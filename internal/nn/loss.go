package nn

import (
	"math"

	"varade/internal/tensor"
)

// MSE returns the mean squared error between pred and target together with
// the gradient dLoss/dPred. The mean is over all elements.
func MSE(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	grad := tensor.Sub(pred, target)
	n := float64(grad.Len())
	loss := 0.0
	gd := grad.Data()
	for i, v := range gd {
		loss += v * v
		gd[i] = 2 * v / n
	}
	return loss / n, grad
}

// GaussianNLL computes the negative log-likelihood of target under
// N(mu, exp(logVar)) averaged over all elements — Eq. (5) of the paper:
//
//	L = ½·(logσ² + (y-μ)²/σ²)
//
// It returns the loss and gradients with respect to mu and logVar.
func GaussianNLL(mu, logVar, target *tensor.Tensor) (loss float64, dMu, dLogVar *tensor.Tensor) {
	dMu = tensor.New(mu.Shape()...)
	dLogVar = tensor.New(mu.Shape()...)
	md, ld, td := mu.Data(), logVar.Data(), target.Data()
	dm, dl := dMu.Data(), dLogVar.Data()
	n := float64(mu.Len())
	for i := range md {
		diff := td[i] - md[i]
		invVar := math.Exp(-ld[i])
		sq := diff * diff * invVar
		loss += 0.5 * (ld[i] + sq)
		// d/dμ ½(y-μ)²/σ² = -(y-μ)/σ²
		dm[i] = -diff * invVar / n
		// d/dlogσ² [½logσ² + ½(y-μ)²e^{-logσ²}] = ½ - ½(y-μ)²/σ²
		dl[i] = 0.5 * (1 - sq) / n
	}
	return loss / n, dMu, dLogVar
}

// GaussianKL computes the KL divergence between N(mu, exp(logVar)) and the
// standard normal prior, averaged over all elements — Eq. (6) of the paper:
//
//	D = -½·(1 + logσ² - μ² - σ²)
//
// It returns the divergence and gradients with respect to mu and logVar.
func GaussianKL(mu, logVar *tensor.Tensor) (div float64, dMu, dLogVar *tensor.Tensor) {
	dMu = tensor.New(mu.Shape()...)
	dLogVar = tensor.New(mu.Shape()...)
	md, ld := mu.Data(), logVar.Data()
	dm, dl := dMu.Data(), dLogVar.Data()
	n := float64(mu.Len())
	for i := range md {
		v := math.Exp(ld[i])
		div += -0.5 * (1 + ld[i] - md[i]*md[i] - v)
		dm[i] = md[i] / n
		dl[i] = 0.5 * (v - 1) / n
	}
	return div / n, dMu, dLogVar
}
