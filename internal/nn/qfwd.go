package nn

import "varade/internal/tensor"

// Int8 forward-path helpers for the quantized segments of a compiled
// inference program. The per-element arithmetic lives in the tensor
// package (tensor.QuantizeAffine / tensor.RequantPairs2, SIMD-dispatched
// with a bit-identical portable fallback); this file owns the
// segment-level glue: quantizing the float input through the first
// stage's ActQuant and the standalone int8 im2col for conv geometries
// the fused requant writers in qseg.go cannot feed directly. Activation
// row sums never appear here — the weight panels carry a synthetic
// all-ones channel (QuantTensor.panels), so the qGEMM itself emits each
// row's Σ qx as its last output column.

// quantizeInput quantizes a float32 activation tensor elementwise into
// dst through a's latched scale, layout-preserving, accumulating
// saturation statistics on a.
func quantizeInput(dst []int8, src []float32, a *ActQuant) {
	inv := 1 / a.Scale
	zf := float32(a.Zero)
	tensor.Parallel(len(src), func(lo, hi int) {
		a.noteClipped(tensor.QuantizeAffine(dst[lo:hi], src[lo:hi], inv, zf), hi-lo)
	})
}

// im2colRowsI8 is the int8 analogue of im2colRows: it unrolls a
// channel-major int8 batch xd (batch, inC, l) into cols, a
// (batch·lo, inC·kernel) row-major matrix. Out-of-range taps are written
// as zx — the activation zero point, i.e. x = 0 — so padding contributes
// exactly nothing once the affine correction subtracts zx from every
// column. The fallback for conv stages the fused requant writers cannot
// feed directly (overlapping or padded windows); interior windows are
// straight copies.
func im2colRowsI8(cols, xd []int8, batch, inC, l, lo, kernel, stride, pad int, zx int8) {
	kw := inC * kernel
	tensor.Parallel(batch, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			xb := xd[b*inC*l : (b+1)*inC*l]
			for t := 0; t < lo; t++ {
				row := cols[(b*lo+t)*kw : (b*lo+t+1)*kw]
				base := t*stride - pad
				if base >= 0 && base+kernel <= l {
					for ic := 0; ic < inC; ic++ {
						copy(row[ic*kernel:(ic+1)*kernel], xb[ic*l+base:ic*l+base+kernel])
					}
					continue
				}
				for ic := 0; ic < inC; ic++ {
					xrow := xb[ic*l : (ic+1)*l]
					for kk := 0; kk < kernel; kk++ {
						p := base + kk
						if p >= 0 && p < l {
							row[ic*kernel+kk] = xrow[p]
						} else {
							row[ic*kernel+kk] = zx
						}
					}
				}
			}
		}
	})
}
