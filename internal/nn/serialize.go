package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"varade/internal/modelio"
	"varade/internal/tensor"
)

// Serialization format (little-endian):
//
//	magic "VNN1" | uint32 nParams | per param:
//	  uint32 nameLen | name bytes | uint32 nDims | nDims×uint32 | float64 data
//
// Parameters are matched by position and validated by name and shape, so a
// model must be reconstructed with the same architecture before loading.
//
// Two sibling payloads carry reduced-precision models. "VNN2" stores the
// same structure with float32 data. "VNNQ" stores, per param, either a
// per-channel affine int8 block (rows, cols, scales, zero points, values)
// for quantized weight matrices or raw float32 data for everything else;
// loading fills the float64 params with dequantized values and returns the
// exact quantized tensors so serving uses precisely what was stored.

const (
	magic    = "VNN1"
	magicF32 = "VNN2"
	magicQNT = "VNNQ"
)

// SaveParams writes params to w in the library's binary format.
func SaveParams(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		shape := p.Value.Shape()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		buf := make([]byte, 8)
		for _, v := range p.Value.Data() {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadParams reads parameters from r into params, which must describe the
// same architecture (same count, names and shapes, in order) as the writer.
func LoadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("nn: reading header: %w", err)
	}
	if string(head) != magic {
		return fmt.Errorf("nn: bad magic %q", head)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) != len(params) {
		return fmt.Errorf("nn: file has %d params, model has %d", n, len(params))
	}
	for _, p := range params {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: param name mismatch: file %q, model %q", name, p.Name)
		}
		var nd uint32
		if err := binary.Read(br, binary.LittleEndian, &nd); err != nil {
			return err
		}
		shape := p.Value.Shape()
		if int(nd) != len(shape) {
			return fmt.Errorf("nn: param %q dims %d, model %d", p.Name, nd, len(shape))
		}
		for i := range shape {
			var d uint32
			if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
				return err
			}
			if int(d) != shape[i] {
				return fmt.Errorf("nn: param %q dim %d is %d, model %d", p.Name, i, d, shape[i])
			}
		}
		data := p.Value.Data()
		buf := make([]byte, 8)
		for i := range data {
			if _, err := io.ReadFull(br, buf); err != nil {
				return err
			}
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
	}
	return nil
}

// writeParamHeader writes one param's name and shape.
func writeParamHeader(w io.Writer, p *Param) error {
	if err := modelio.WriteString(w, p.Name); err != nil {
		return err
	}
	return modelio.WriteI32Slice(w, p.Value.Shape())
}

// readParamHeader reads and validates one param's name and shape.
func readParamHeader(r io.Reader, p *Param) error {
	name, err := modelio.ReadString(r)
	if err != nil {
		return err
	}
	if name != p.Name {
		return fmt.Errorf("nn: param name mismatch: file %q, model %q", name, p.Name)
	}
	shape, err := modelio.ReadI32Slice(r)
	if err != nil {
		return err
	}
	want := p.Value.Shape()
	if len(shape) != len(want) {
		return fmt.Errorf("nn: param %q dims %d, model %d", p.Name, len(shape), len(want))
	}
	for i := range want {
		if shape[i] != want[i] {
			return fmt.Errorf("nn: param %q dim %d is %d, model %d", p.Name, i, shape[i], want[i])
		}
	}
	return nil
}

// SaveParamsF32 writes params to w in the float32 payload format. Values
// are rounded from the float64 training weights; loading restores them
// exactly (float32 → float64 widening is lossless), so a float32 file
// round-trips bit-stable.
func SaveParamsF32(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicF32); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeParamHeader(bw, p); err != nil {
			return err
		}
		data := make([]float32, p.Value.Len())
		tensor.ConvertSlice(data, p.Value.Data())
		if err := modelio.WriteF32Slice(bw, data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadParamsF32 reads a float32 payload into params (widened to float64).
func LoadParamsF32(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	head := make([]byte, len(magicF32))
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("nn: reading header: %w", err)
	}
	if string(head) != magicF32 {
		return fmt.Errorf("nn: bad float32 payload magic %q", head)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) != len(params) {
		return fmt.Errorf("nn: file has %d params, model has %d", n, len(params))
	}
	for _, p := range params {
		if err := readParamHeader(br, p); err != nil {
			return err
		}
		data, err := modelio.ReadF32Slice(br)
		if err != nil {
			return err
		}
		if len(data) != p.Value.Len() {
			return fmt.Errorf("nn: param %q has %d values, want %d", p.Name, len(data), p.Value.Len())
		}
		tensor.ConvertSlice(p.Value.Data(), data)
	}
	return nil
}

// actsMagic introduces the optional activation-scale section trailing a
// VNNQ payload: calibrated per-tensor activation quantization (scale +
// zero point per compiled segment stage, in compile order). Files
// written before activation quantization existed simply end after the
// last parameter; LoadParamsQuant treats that EOF as "no scales" and the
// model calibrates on its first batch — full backward compatibility.
const actsMagic = "ACTS"

// SaveParamsQuant writes the int8-quantized payload: params whose weights
// quantOf maps to a QuantTensor store the int8 block, everything else
// stores float32 data. A calibrated acts set appends the activation-scale
// section; nil or uncalibrated sets keep the legacy byte stream exactly.
func SaveParamsQuant(w io.Writer, params []*Param, quantOf func(*Param) *QuantTensor, acts *ActSet) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicQNT); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeParamHeader(bw, p); err != nil {
			return err
		}
		q := quantOf(p)
		if q == nil {
			if err := bw.WriteByte(0); err != nil {
				return err
			}
			data := make([]float32, p.Value.Len())
			tensor.ConvertSlice(data, p.Value.Data())
			if err := modelio.WriteF32Slice(bw, data); err != nil {
				return err
			}
			continue
		}
		if err := bw.WriteByte(1); err != nil {
			return err
		}
		if err := modelio.WriteU32(bw, uint32(q.Rows)); err != nil {
			return err
		}
		if err := modelio.WriteU32(bw, uint32(q.Cols)); err != nil {
			return err
		}
		if err := modelio.WriteF32Slice(bw, q.Scale); err != nil {
			return err
		}
		if err := modelio.WriteI8Slice(bw, q.Zero); err != nil {
			return err
		}
		if err := modelio.WriteI8Slice(bw, q.Q); err != nil {
			return err
		}
	}
	if acts != nil && acts.Calibrated() {
		scales, zeros := acts.Params()
		if _, err := bw.WriteString(actsMagic); err != nil {
			return err
		}
		if err := modelio.WriteF32Slice(bw, scales); err != nil {
			return err
		}
		if err := modelio.WriteI8Slice(bw, zeros); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadParamsQuant reads an int8-quantized payload: float64 params receive
// dequantized (or widened float32) values, and the returned cache maps
// each quantized weight param to its exact stored QuantTensor. The
// returned ActSet carries the calibrated activation scales when the file
// has the trailing section; it is nil for legacy files, which then
// calibrate on their first batch.
func LoadParamsQuant(r io.Reader, params []*Param) (QuantCache, *ActSet, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magicQNT))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, nil, fmt.Errorf("nn: reading header: %w", err)
	}
	if string(head) != magicQNT {
		return nil, nil, fmt.Errorf("nn: bad quantized payload magic %q", head)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, nil, err
	}
	if int(n) != len(params) {
		return nil, nil, fmt.Errorf("nn: file has %d params, model has %d", n, len(params))
	}
	cache := make(QuantCache)
	for _, p := range params {
		if err := readParamHeader(br, p); err != nil {
			return nil, nil, err
		}
		flag, err := br.ReadByte()
		if err != nil {
			return nil, nil, err
		}
		if flag == 0 {
			data, err := modelio.ReadF32Slice(br)
			if err != nil {
				return nil, nil, err
			}
			if len(data) != p.Value.Len() {
				return nil, nil, fmt.Errorf("nn: param %q has %d values, want %d", p.Name, len(data), p.Value.Len())
			}
			tensor.ConvertSlice(p.Value.Data(), data)
			continue
		}
		rows, err := modelio.ReadU32(br)
		if err != nil {
			return nil, nil, err
		}
		cols, err := modelio.ReadU32(br)
		if err != nil {
			return nil, nil, err
		}
		if int(rows)*int(cols) != p.Value.Len() {
			return nil, nil, fmt.Errorf("nn: param %q quant block %dx%d, want %d elements", p.Name, rows, cols, p.Value.Len())
		}
		scale, err := modelio.ReadF32Slice(br)
		if err != nil {
			return nil, nil, err
		}
		zero, err := modelio.ReadI8Slice(br)
		if err != nil {
			return nil, nil, err
		}
		qv, err := modelio.ReadI8Slice(br)
		if err != nil {
			return nil, nil, err
		}
		if len(scale) != int(rows) || len(zero) != int(rows) || len(qv) != int(rows)*int(cols) {
			return nil, nil, fmt.Errorf("nn: param %q quant block lengths inconsistent", p.Name)
		}
		q := &QuantTensor{
			Rows: int(rows), Cols: int(cols),
			Scale: scale, Zero: zero, Q: qv,
			shape: append([]int(nil), p.Value.Shape()...),
		}
		p.Value.CopyFrom(q.Dequantize())
		cache[p] = q
	}
	acts, err := readActsSection(br)
	if err != nil {
		return nil, nil, err
	}
	return cache, acts, nil
}

// readActsSection reads the optional trailing activation-scale section.
// A clean EOF right after the parameters is the legacy format.
func readActsSection(br *bufio.Reader) (*ActSet, error) {
	head := make([]byte, len(actsMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, fmt.Errorf("nn: reading activation-scale section: %w", err)
	}
	if string(head) != actsMagic {
		return nil, fmt.Errorf("nn: bad activation-scale magic %q", head)
	}
	scales, err := modelio.ReadF32Slice(br)
	if err != nil {
		return nil, err
	}
	zeros, err := modelio.ReadI8Slice(br)
	if err != nil {
		return nil, err
	}
	if len(scales) != len(zeros) {
		return nil, fmt.Errorf("nn: activation-scale section lengths inconsistent (%d scales, %d zeros)", len(scales), len(zeros))
	}
	return RestoreActSet(scales, zeros), nil
}

// SaveModelFile writes a self-describing model container: the modelio
// header (kind + config JSON) followed by the parameter payload. It is
// the shared save path for every nn-backed detector.
func SaveModelFile(path, kind string, cfg any, params []*Param) error {
	return modelio.SaveFile(path, kind, cfg, func(w io.Writer) error {
		return SaveParams(w, params)
	})
}

// LoadModelFile reads a container written by SaveModelFile: it checks
// the kind, decodes the config header into cfg, calls build (which
// constructs the model from the now-populated cfg and returns its
// parameters) and fills those parameters from the payload — one open,
// one header parse.
func LoadModelFile(path, kind string, cfg any, build func() ([]*Param, error)) error {
	return modelio.LoadFile(path, kind, cfg, func(r io.Reader) error {
		params, err := build()
		if err != nil {
			return err
		}
		return LoadParams(r, params)
	})
}

// SaveFile writes params to path, creating or truncating it.
func SaveFile(path string, params []*Param) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveParams(f, params); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads params from path into an already constructed model.
func LoadFile(path string, params []*Param) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadParams(f, params)
}
