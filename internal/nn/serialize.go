package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"varade/internal/modelio"
)

// Serialization format (little-endian):
//
//	magic "VNN1" | uint32 nParams | per param:
//	  uint32 nameLen | name bytes | uint32 nDims | nDims×uint32 | float64 data
//
// Parameters are matched by position and validated by name and shape, so a
// model must be reconstructed with the same architecture before loading.

const magic = "VNN1"

// SaveParams writes params to w in the library's binary format.
func SaveParams(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		shape := p.Value.Shape()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		buf := make([]byte, 8)
		for _, v := range p.Value.Data() {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadParams reads parameters from r into params, which must describe the
// same architecture (same count, names and shapes, in order) as the writer.
func LoadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("nn: reading header: %w", err)
	}
	if string(head) != magic {
		return fmt.Errorf("nn: bad magic %q", head)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) != len(params) {
		return fmt.Errorf("nn: file has %d params, model has %d", n, len(params))
	}
	for _, p := range params {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: param name mismatch: file %q, model %q", name, p.Name)
		}
		var nd uint32
		if err := binary.Read(br, binary.LittleEndian, &nd); err != nil {
			return err
		}
		shape := p.Value.Shape()
		if int(nd) != len(shape) {
			return fmt.Errorf("nn: param %q dims %d, model %d", p.Name, nd, len(shape))
		}
		for i := range shape {
			var d uint32
			if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
				return err
			}
			if int(d) != shape[i] {
				return fmt.Errorf("nn: param %q dim %d is %d, model %d", p.Name, i, d, shape[i])
			}
		}
		data := p.Value.Data()
		buf := make([]byte, 8)
		for i := range data {
			if _, err := io.ReadFull(br, buf); err != nil {
				return err
			}
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
	}
	return nil
}

// SaveModelFile writes a self-describing model container: the modelio
// header (kind + config JSON) followed by the parameter payload. It is
// the shared save path for every nn-backed detector.
func SaveModelFile(path, kind string, cfg any, params []*Param) error {
	return modelio.SaveFile(path, kind, cfg, func(w io.Writer) error {
		return SaveParams(w, params)
	})
}

// LoadModelFile reads a container written by SaveModelFile: it checks
// the kind, decodes the config header into cfg, calls build (which
// constructs the model from the now-populated cfg and returns its
// parameters) and fills those parameters from the payload — one open,
// one header parse.
func LoadModelFile(path, kind string, cfg any, build func() ([]*Param, error)) error {
	return modelio.LoadFile(path, kind, cfg, func(r io.Reader) error {
		params, err := build()
		if err != nil {
			return err
		}
		return LoadParams(r, params)
	})
}

// SaveFile writes params to path, creating or truncating it.
func SaveFile(path string, params []*Param) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveParams(f, params); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads params from path into an already constructed model.
func LoadFile(path string, params []*Param) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadParams(f, params)
}
