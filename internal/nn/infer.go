package nn

import (
	"fmt"

	"varade/internal/tensor"
)

// Precision-polymorphic inference programs. A trained float64 layer stack
// is compiled into an InferenceNet[T]: a flat list of stateless ops whose
// weights were converted to T once, up front. The ops reuse the generic
// forward kernels of fwd.go, so an InferenceNet[float64] reproduces the
// training layers bit for bit, while InferenceNet[float32] runs the same
// algorithm at half the memory bandwidth. CompileQuantized additionally
// swaps Dense/Conv1D weights for per-channel affine int8 (quant.go) with
// float32 accumulation.
//
// Unlike training layers, ops cache nothing, so a compiled net is safe for
// concurrent Forward calls.

// InferOp is one step of a compiled inference program.
type InferOp[T tensor.Float] interface {
	Apply(x *tensor.Dense[T]) *tensor.Dense[T]
}

// InferenceNet is a compiled sequence of inference ops at precision T.
type InferenceNet[T tensor.Float] struct {
	ops []InferOp[T]
}

// Forward runs the program on x and returns the final activation.
func (n *InferenceNet[T]) Forward(x *tensor.Dense[T]) *tensor.Dense[T] {
	for _, op := range n.ops {
		x = op.Apply(x)
	}
	return x
}

// NumOps returns the number of compiled ops.
func (n *InferenceNet[T]) NumOps() int { return len(n.ops) }

// AppendDense appends a Dense op with explicit weights — used by callers
// that specialise a projection for scoring (e.g. keeping only the
// log-variance rows of VARADE's head, since §3.2 discards the mean).
func (n *InferenceNet[T]) AppendDense(w, b *tensor.Dense[T]) {
	n.ops = append(n.ops, opDense[T]{w: w, b: b})
}

// AppendDenseQuant appends an int8 Dense op with explicit quantized
// weights (float32 programs only). With a non-nil ActSet the op joins
// the program's trailing quantized segment (or starts one), registering
// the next activation entry in compile order, so a specialised head —
// VARADE's log-variance projection — runs inside the int8 lane instead
// of forcing a dequantize/requantize round trip at the segment boundary.
func AppendDenseQuant(n *InferenceNet[float32], acts *ActSet, q *QuantTensor, b []float32) {
	if acts == nil {
		n.ops = append(n.ops, opDenseQ{q: q, b: b})
		return
	}
	st := &qStage{kind: stageDense, q: q, b: b, in: acts.next("head.in")}
	if len(n.ops) > 0 {
		if seg, ok := n.ops[len(n.ops)-1].(*opQuantSeg); ok && !seg.ready.Load() {
			seg.stages = append(seg.stages, st)
			return
		}
	}
	n.ops = append(n.ops, &opQuantSeg{acts: acts, stages: []*qStage{st}})
}

// WeightBytes returns the total byte size of the program's weights — the
// model's precision-dependent memory footprint.
func (n *InferenceNet[T]) WeightBytes() int {
	total := 0
	for _, op := range n.ops {
		if s, ok := op.(interface{ weightBytes() int }); ok {
			total += s.weightBytes()
		}
	}
	return total
}

type opDense[T tensor.Float] struct{ w, b *tensor.Dense[T] }

func (o opDense[T]) Apply(x *tensor.Dense[T]) *tensor.Dense[T] {
	return denseForward(x, o.w, o.b)
}

func (o opDense[T]) weightBytes() int {
	var z T
	return (o.w.Len() + o.b.Len()) * int(tensor.SizeOf(z))
}

type opConv1D[T tensor.Float] struct {
	w, b *tensor.Dense[T]
	g    convGeom
}

func (o opConv1D[T]) Apply(x *tensor.Dense[T]) *tensor.Dense[T] {
	return conv1dForward(x, o.w, o.b, o.g)
}

func (o opConv1D[T]) weightBytes() int {
	var z T
	return (o.w.Len() + o.b.Len()) * int(tensor.SizeOf(z))
}

type opConvT1D[T tensor.Float] struct {
	w, b *tensor.Dense[T]
	g    convGeom
}

func (o opConvT1D[T]) Apply(x *tensor.Dense[T]) *tensor.Dense[T] {
	return convT1dForward(x, o.w, o.b, o.g)
}

func (o opConvT1D[T]) weightBytes() int {
	var z T
	return (o.w.Len() + o.b.Len()) * int(tensor.SizeOf(z))
}

type opLSTM[T tensor.Float] struct {
	wx, wh, b  *tensor.Dense[T]
	in, hidden int
	returnSeq  bool
}

func (o opLSTM[T]) Apply(x *tensor.Dense[T]) *tensor.Dense[T] {
	return lstmForward(x, o.wx, o.wh, o.b, o.in, o.hidden, o.returnSeq, nil)
}

func (o opLSTM[T]) weightBytes() int {
	var z T
	return (o.wx.Len() + o.wh.Len() + o.b.Len()) * int(tensor.SizeOf(z))
}

type opReLU[T tensor.Float] struct{}

func (opReLU[T]) Apply(x *tensor.Dense[T]) *tensor.Dense[T] {
	out := tensor.NewOf[T](x.Shape()...)
	od := out.Data()
	for i, v := range x.Data() {
		if v > 0 {
			od[i] = v
		}
	}
	return out
}

type opTanh[T tensor.Float] struct{}

func (opTanh[T]) Apply(x *tensor.Dense[T]) *tensor.Dense[T] {
	return tensor.Apply(x, tanhT[T])
}

type opSigmoid[T tensor.Float] struct{}

func (opSigmoid[T]) Apply(x *tensor.Dense[T]) *tensor.Dense[T] {
	return tensor.Apply(x, sigmoidT[T])
}

type opFlatten[T tensor.Float] struct{}

func (opFlatten[T]) Apply(x *tensor.Dense[T]) *tensor.Dense[T] {
	return x.Reshape(x.Dim(0), -1)
}

// opResidual runs a compiled branch and adds the (possibly projected)
// shortcut, mirroring ResBlock1D.
type opResidual[T tensor.Float] struct {
	branch *InferenceNet[T]
	proj   *opConv1D[T] // nil for identity shortcut
}

func (o opResidual[T]) Apply(x *tensor.Dense[T]) *tensor.Dense[T] {
	y := o.branch.Forward(x)
	if o.proj != nil {
		return tensor.Add(y, o.proj.Apply(x))
	}
	return tensor.Add(y, x)
}

func (o opResidual[T]) weightBytes() int {
	total := o.branch.WeightBytes()
	if o.proj != nil {
		total += o.proj.weightBytes()
	}
	return total
}

// opDenseQ is a Dense layer with per-channel affine int8 weights and
// float32 accumulation. Only valid at T = float32.
type opDenseQ struct {
	q *QuantTensor
	b []float32
}

func (o opDenseQ) Apply(x *tensor.Tensor32) *tensor.Tensor32 {
	out := tensor.NewOf[float32](x.Dim(0), o.q.Rows)
	quantGEMMTransB(out, x, o.q, o.b)
	return out
}

func (o opDenseQ) weightBytes() int { return o.q.NumBytes() + 4*len(o.b) }

// opConv1DQ is a Conv1D with int8 weights: im2col in float32 scratch, then
// the quantized GEMM, then the bias/permute pass. Only valid at T = float32.
type opConv1DQ struct {
	q *QuantTensor // rows = outC, cols = inC·kernel
	b []float32
	g convGeom
}

func (o opConv1DQ) Apply(x *tensor.Tensor32) *tensor.Tensor32 {
	g := o.g
	batch, l := x.Dim(0), x.Dim(2)
	lo := g.outLen(l)
	if lo <= 0 {
		panic(fmt.Sprintf("nn: quantized Conv1D input length %d too short for k=%d s=%d p=%d", l, g.kernel, g.stride, g.pad))
	}
	out := tensor.NewOf[float32](batch, g.outC, lo)
	ar := tensor.GetArenaOf[float32]()
	defer tensor.PutArena(ar)
	cols := ar.Tensor(batch*lo, g.inC*g.kernel)
	im2colRows(cols, x.Data(), batch, g.inC, l, lo, g.kernel, g.stride, g.pad)
	prod := ar.Tensor(batch*lo, g.outC)
	quantGEMMTransB(prod, cols, o.q, nil)
	pd, od := prod.Data(), out.Data()
	tensor.Parallel(batch, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			ob := od[b*g.outC*lo : (b+1)*g.outC*lo]
			for t := 0; t < lo; t++ {
				prow := pd[(b*lo+t)*g.outC : (b*lo+t+1)*g.outC]
				for oc, v := range prow {
					ob[oc*lo+t] = v + o.b[oc]
				}
			}
		}
	})
	return out
}

func (o opConv1DQ) weightBytes() int { return o.q.NumBytes() + 4*len(o.b) }

// cvt converts a float64 parameter tensor to precision T.
func cvt[T tensor.Float](p *Param) *tensor.Dense[T] {
	return tensor.Convert[T](p.Value)
}

func f32s(p *Param) []float32 {
	out := make([]float32, p.Value.Len())
	tensor.ConvertSlice(out, p.Value.Data())
	return out
}

// Compile builds an InferenceNet[T] from trained float64 layers,
// converting every weight to T once. Layer order and arithmetic are
// preserved exactly; Sequential containers are flattened.
func Compile[T tensor.Float](layers ...Layer) (*InferenceNet[T], error) {
	net := &InferenceNet[T]{}
	for _, l := range layers {
		if err := compileInto(net, l); err != nil {
			return nil, err
		}
	}
	return net, nil
}

func compileInto[T tensor.Float](net *InferenceNet[T], l Layer) error {
	switch v := l.(type) {
	case *Sequential:
		for _, inner := range v.Layers {
			if err := compileInto(net, inner); err != nil {
				return err
			}
		}
	case *Dense:
		net.ops = append(net.ops, opDense[T]{w: cvt[T](v.W), b: cvt[T](v.B)})
	case *Conv1D:
		net.ops = append(net.ops, opConv1D[T]{w: cvt[T](v.W), b: cvt[T](v.B), g: v.geom()})
	case *ConvTranspose1D:
		net.ops = append(net.ops, opConvT1D[T]{w: cvt[T](v.W), b: cvt[T](v.B), g: v.geom()})
	case *LSTM:
		net.ops = append(net.ops, opLSTM[T]{
			wx: cvt[T](v.Wx), wh: cvt[T](v.Wh), b: cvt[T](v.B),
			in: v.In, hidden: v.Hidden, returnSeq: v.ReturnSequences,
		})
	case *ResBlock1D:
		op := opResidual[T]{branch: &InferenceNet[T]{}}
		for _, inner := range []Layer{v.relu1, v.conv1, v.relu2, v.conv2} {
			if err := compileInto(op.branch, inner); err != nil {
				return err
			}
		}
		if v.proj != nil {
			op.proj = &opConv1D[T]{w: cvt[T](v.proj.W), b: cvt[T](v.proj.B), g: v.proj.geom()}
		}
		net.ops = append(net.ops, op)
	case *ReLU:
		net.ops = append(net.ops, opReLU[T]{})
	case *Tanh:
		net.ops = append(net.ops, opTanh[T]{})
	case *Sigmoid:
		net.ops = append(net.ops, opSigmoid[T]{})
	case *Flatten:
		net.ops = append(net.ops, opFlatten[T]{})
	default:
		return fmt.Errorf("nn: cannot compile layer type %T for inference", l)
	}
	return nil
}

// QuantCache maps weight parameters to their int8 quantization. Passing a
// cache into CompileQuantized reuses existing entries (so models loaded
// from an int8 file serve the exact stored weights) and records fresh
// quantizations for parameters not yet present (so a subsequent Save
// persists exactly what is being served).
type QuantCache map[*Param]*QuantTensor

// CompileQuantized builds a float32 inference program where Dense and
// Conv1D weight matrices are per-channel affine int8 with float32
// accumulation. Other layers (transpose convolutions, LSTMs, activations)
// run in plain float32; biases stay float32.
func CompileQuantized(cache QuantCache, layers ...Layer) (*InferenceNet[float32], error) {
	return CompileQuantizedActs(cache, nil, layers...)
}

// CompileQuantizedActs is CompileQuantized with activation quantization:
// a non-nil ActSet turns maximal {Conv1D, ReLU, Flatten, Dense} runs
// into true-int8 segments (opQuantSeg) whose inter-stage activations are
// int8 and whose GEMMs accumulate in int32 through the tensor qGEMM
// engine. The set's entries are registered in deterministic compile
// order; a set restored from a container serves its stored scales, an
// empty one calibrates on the first batch. acts == nil keeps the legacy
// per-layer float32-accumulating program.
func CompileQuantizedActs(cache QuantCache, acts *ActSet, layers ...Layer) (*InferenceNet[float32], error) {
	if cache == nil {
		cache = make(QuantCache)
	}
	net := &InferenceNet[float32]{}
	if acts != nil {
		acts.resetCursor()
		return net, compileQuantSegments(net, cache, acts, flattenLayers(layers))
	}
	for _, l := range layers {
		if err := compileQuantInto(net, cache, l); err != nil {
			return nil, err
		}
	}
	return net, nil
}

func quantFor(cache QuantCache, p *Param, rows, cols int) *QuantTensor {
	if q, ok := cache[p]; ok {
		return q
	}
	q := QuantizeRows(p.Value, rows, cols)
	cache[p] = q
	return q
}

func compileQuantInto(net *InferenceNet[float32], cache QuantCache, l Layer) error {
	switch v := l.(type) {
	case *Sequential:
		for _, inner := range v.Layers {
			if err := compileQuantInto(net, cache, inner); err != nil {
				return err
			}
		}
	case *Dense:
		q := quantFor(cache, v.W, v.OutFeatures(), v.InFeatures())
		net.ops = append(net.ops, opDenseQ{q: q, b: f32s(v.B)})
	case *Conv1D:
		q := quantFor(cache, v.W, v.OutC, v.InC*v.Kernel)
		net.ops = append(net.ops, opConv1DQ{q: q, b: f32s(v.B), g: v.geom()})
	case *ResBlock1D:
		op := opResidual[float32]{branch: &InferenceNet[float32]{}}
		for _, inner := range []Layer{v.relu1, v.conv1, v.relu2, v.conv2} {
			if err := compileQuantInto(op.branch, cache, inner); err != nil {
				return err
			}
		}
		if v.proj != nil {
			// The 1×1 shortcut projection is tiny; keep it in float32.
			op.proj = &opConv1D[float32]{w: cvt[float32](v.proj.W), b: cvt[float32](v.proj.B), g: v.proj.geom()}
		}
		net.ops = append(net.ops, op)
	default:
		// Everything else keeps the plain float32 op.
		return compileInto(net, l)
	}
	return nil
}
