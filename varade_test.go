package varade

import (
	"testing"
)

// TestQuickAccuracy is the headline integration test: on the simulated
// collision experiment every detector must beat chance at the point level,
// and VARADE must clear the event-level (point-adjust) bar — the paper's
// unit of evaluation is 125 discrete collisions. Exact orderings on a
// synthetic testbed vary with seeds, so this asserts floors rather than a
// total order; the full measured comparison lives in EXPERIMENTS.md.
func TestQuickAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	acc, err := quickAccuracy(42)
	if err != nil {
		t.Fatal(err)
	}
	point := map[string]float64{}
	adjusted := map[string]float64{}
	for _, a := range acc {
		t.Logf("%-18s AUC %.3f  adjusted %.3f  (fit %.1fs)", a.Name, a.AUCROC, a.AUCAdjusted, a.FitSec)
		point[a.Name] = a.AUCROC
		adjusted[a.Name] = a.AUCAdjusted
	}
	if len(point) != 6 {
		t.Fatalf("expected 6 detectors, got %d", len(point))
	}
	for name, auc := range point {
		if auc < 0.5 {
			t.Errorf("%s below chance at point level: %.3f", name, auc)
		}
	}
	// The paper's headline: VARADE delivers the best anomaly detection
	// accuracy (0.844 AUC-ROC in Table 2; this reproduction measures 0.84
	// at the default seed).
	if v := point["VARADE"]; v < 0.75 {
		t.Errorf("VARADE point AUC %.3f below 0.75", v)
	}
	for _, other := range []string{"AR-LSTM", "GBRF", "AE", "kNN", "Isolation Forest"} {
		if point["VARADE"] < point[other] {
			t.Errorf("VARADE (%.3f) below %s (%.3f)", point["VARADE"], other, point[other])
		}
	}
	if v := adjusted["VARADE"]; v < 0.85 {
		t.Errorf("VARADE adjusted AUC %.3f below 0.85", v)
	}
}
