module varade

go 1.21
