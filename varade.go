// Package varade is a from-scratch Go reproduction of "VARADE: a
// Variational-based AutoRegressive model for Anomaly Detection on the Edge"
// (Mascolini et al., DAC 2024).
//
// The package re-exports the full system: the VARADE model itself
// (internal/core), the five baseline detectors of §3.3, the simulated
// 86-channel robotic testbed of §4, the AUC-ROC evaluation, the edge-board
// profiles that regenerate Table 2 and Figure 3, and the streaming runtime.
//
// Quick start:
//
//	ds, _ := varade.GenerateDataset(varade.SmallDatasetConfig())
//	model, _ := varade.New(varade.EdgeConfig(86))
//	_ = model.Fit(ds.Train)
//	scores := varade.ScoreSeriesBatched(model, ds.Test)
//	fmt.Println(varade.AUCROC(scores, ds.Labels))
package varade

import (
	"context"

	"varade/internal/baselines/ae"
	"varade/internal/baselines/arlstm"
	"varade/internal/baselines/gbrf"
	"varade/internal/baselines/iforest"
	"varade/internal/baselines/knn"
	"varade/internal/core"
	"varade/internal/detect"
	"varade/internal/edge"
	"varade/internal/eval"
	"varade/internal/robot"
	"varade/internal/serve"
	"varade/internal/stream"
	"varade/internal/tensor"
)

// Core model.

// Config describes a VARADE architecture (see internal/core.Config).
type Config = core.Config

// Model is a VARADE network.
type Model = core.Model

// TrainConfig controls Model.Fit.
type TrainConfig = core.TrainConfig

// ResidualScorer scores a VARADE net with the conventional residual
// criterion instead of the variance — the paper's central ablation.
type ResidualScorer = core.ResidualScorer

// New builds an untrained VARADE model.
func New(cfg Config) (*Model, error) { return core.New(cfg) }

// LoadModel reads a model saved with Model.Save and reconstructs it from
// the embedded config header — no architecture flags needed.
func LoadModel(path string) (*Model, error) { return core.LoadModel(path) }

// PaperConfig returns the exact architecture of §3.1 (T=512, 8 layers,
// 128→1024 feature maps).
func PaperConfig(channels int) Config { return core.PaperConfig(channels) }

// EdgeConfig returns a reduced architecture that trains in seconds on one
// CPU core while preserving the paper's topology.
func EdgeConfig(channels int) Config { return core.EdgeConfig(channels) }

// DefaultTrainConfig returns training settings sized for EdgeConfig models.
func DefaultTrainConfig() TrainConfig { return core.DefaultTrainConfig() }

// Detector interface and helpers.

// Detector is the interface implemented by VARADE and all baselines.
type Detector = detect.Detector

// ScoreSeries slides a detector over a (T, C) series, returning one score
// per time step.
func ScoreSeries(d Detector, series *Tensor) []float64 { return detect.ScoreSeries(d, series) }

// Scorer is the unified scoring surface: batched float64 and float32
// entry points plus a Capabilities descriptor, implemented natively by
// VARADE, AE, AR-LSTM and the residual ablation scorer and synthesised
// for every other detector by AsScorer.
type Scorer = detect.Scorer

// ScorerCapabilities describes a detector's scoring engine (batched
// path, reduced-precision path, current and supported precisions).
type ScorerCapabilities = detect.Capabilities

// AsScorer returns d's unified scoring surface, wrapping detectors
// without a native batched path in a per-window adapter.
func AsScorer(d Detector) Scorer { return detect.AsScorer(d) }

// ScoreSeriesBatched scores a series through the batched parallel engine,
// falling back to the per-window loop for detectors without a batched
// path. Scores are identical to ScoreSeries.
func ScoreSeriesBatched(d Detector, series *Tensor) []float64 {
	return detect.ScoreSeriesBatched(d, series)
}

// Inference precision (the float32 fast path and int8 quantization).

// Precision constants for Config.Precision and Model.SetPrecision:
// training always runs in float64; inference runs in the configured
// precision.
const (
	PrecisionFloat64 = core.PrecisionFloat64
	PrecisionFloat32 = core.PrecisionFloat32
	PrecisionInt8    = core.PrecisionInt8
)

// Tensor32 is the float32 tensor used by the inference fast path.
type Tensor32 = tensor.Tensor32

// CalibrationStat is one activation-quantization entry of an int8
// model's calibration report (see Model.CalibrationStats).
type CalibrationStat = core.CalibrationStat

// Baselines (§3.3).

// ARLSTMConfig configures the AR-LSTM baseline.
type ARLSTMConfig = arlstm.Config

// NewARLSTM builds the AR-LSTM forecaster.
func NewARLSTM(cfg ARLSTMConfig) (*arlstm.Model, error) { return arlstm.New(cfg) }

// GBRFConfig configures the gradient-boosted regression forest.
type GBRFConfig = gbrf.Config

// TreeConfig controls CART tree growth inside GBRF.
type TreeConfig = gbrf.TreeConfig

// NewGBRF builds the GBRF forecaster.
func NewGBRF(cfg GBRFConfig) (*gbrf.Model, error) { return gbrf.New(cfg) }

// AEConfig configures the convolutional autoencoder.
type AEConfig = ae.Config

// NewAE builds the six-ResNet-block autoencoder.
func NewAE(cfg AEConfig) (*ae.Model, error) { return ae.New(cfg) }

// KNNConfig configures the k-nearest-neighbour detector.
type KNNConfig = knn.Config

// NewKNN builds the kNN detector.
func NewKNN(cfg KNNConfig) (*knn.Model, error) { return knn.New(cfg) }

// IForestConfig configures the Isolation Forest.
type IForestConfig = iforest.Config

// NewIForest builds the Isolation Forest detector.
func NewIForest(cfg IForestConfig) (*iforest.Model, error) { return iforest.New(cfg) }

// Testbed (§4).

// Tensor is the dense array type used throughout the library.
type Tensor = tensor.Tensor

// Dataset bundles normalised train/test series with collision ground truth.
type Dataset = robot.Dataset

// DatasetConfig describes dataset generation.
type DatasetConfig = robot.DatasetConfig

// SimConfig parameterises the robot simulator.
type SimConfig = robot.SimConfig

// ChannelInfo describes one stream variable (Table 1).
type ChannelInfo = robot.Channel

// NumChannels is the testbed stream width (86, as in Table 1).
const NumChannels = robot.NumChannels

// GenerateDataset produces a complete train/test experiment.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) { return robot.Generate(cfg) }

// SmallDatasetConfig returns the scaled-down experiment used by tests and
// quick examples.
func SmallDatasetConfig() DatasetConfig { return robot.SmallDataset() }

// PaperDatasetConfig returns the full §4.3 protocol (390 min training,
// 82 min test, 125 collisions).
func PaperDatasetConfig() DatasetConfig { return robot.PaperDataset() }

// Channels returns the 86-entry stream schema of Table 1.
func Channels() []ChannelInfo { return robot.Channels() }

// SelectChannels restricts a series to the given channel indices.
func SelectChannels(series *Tensor, idx []int) *Tensor { return robot.SelectChannels(series, idx) }

// InterestingChannels returns the compact channel subset used by the fast
// accuracy experiments.
func InterestingChannels() []int { return robot.InterestingChannels() }

// Evaluation (§4.3).

// AUCROC computes the threshold-free area under the ROC curve.
func AUCROC(scores []float64, labels []bool) float64 { return eval.AUCROC(scores, labels) }

// ROCPoint is one operating point of a ROC curve.
type ROCPoint = eval.ROCPoint

// ROCCurve returns all ROC operating points.
func ROCCurve(scores []float64, labels []bool) []ROCPoint { return eval.ROCCurve(scores, labels) }

// BestF1 sweeps thresholds and returns the best F1 and its threshold.
func BestF1(scores []float64, labels []bool) (f1, threshold float64) {
	return eval.BestF1(scores, labels)
}

// EventRecall returns the fraction of anomaly events with at least one
// point above the threshold.
func EventRecall(scores []float64, labels []bool, thr float64) float64 {
	return eval.EventRecall(scores, labels, thr)
}

// Edge boards (§4.3–4.4).

// Platform models one edge board.
type Platform = edge.Platform

// Workload is a detector's measured execution profile.
type Workload = edge.Workload

// BoardReport is one row of Table 2.
type BoardReport = edge.Report

// XavierNX returns the Jetson Xavier NX profile.
func XavierNX() Platform { return edge.XavierNX() }

// AGXOrin returns the Jetson AGX Orin profile.
func AGXOrin() Platform { return edge.AGXOrin() }

// Streaming runtime (Fig. 2).

// Runner couples a detector to a live sample feed.
type Runner = stream.Runner

// StreamScore is one runner output.
type StreamScore = stream.Score

// NewRunner returns a streaming runner for a fitted detector.
func NewRunner(d Detector, channels int) *Runner { return stream.NewRunner(d, channels) }

// Fleet serving (internal/serve): one server, many device sessions,
// windows coalesced across sessions into batched forward passes.

// ModelRegistry stores named, versioned detectors on disk.
type ModelRegistry = serve.Registry

// FleetServer multiplexes device sessions over registered detectors.
type FleetServer = serve.Server

// FleetServerConfig parameterises a FleetServer.
type FleetServerConfig = serve.Config

// FleetMetrics is a point-in-time serving snapshot (sessions, scored/s,
// drops, coalesce-latency percentiles).
type FleetMetrics = serve.Metrics

// FleetClient is a device-side connection speaking the binary framing.
type FleetClient = serve.Client

// OpenRegistry opens (creating if needed) a model registry at dir.
func OpenRegistry(dir string) (*ModelRegistry, error) { return serve.OpenRegistry(dir) }

// NewFleetServer builds a fleet server; call Serve to start it.
func NewFleetServer(cfg FleetServerConfig) (*FleetServer, error) { return serve.NewServer(cfg) }

// DialFleet opens a protocol-v1 device session against a fleet server
// (no capability negotiation; the session is served at the model file's
// own precision).
func DialFleet(ctx context.Context, addr, model string, channels int) (*FleetClient, error) {
	return serve.Dial(ctx, addr, model, channels)
}

// SessionCaps is the per-session capability set negotiated by protocol
// v2: serving precision, score-frame cap, and admission drop policy.
type SessionCaps = stream.SessionCaps

// DialFleetWith opens a protocol-v2 device session, negotiating caps
// (e.g. SessionCaps{Precision: PrecisionInt8} asks the server to derive
// an int8 serving group from the registry entry). The grant is echoed in
// the client's Welcome.
func DialFleetWith(ctx context.Context, addr, model string, channels int, caps SessionCaps) (*FleetClient, error) {
	return serve.DialWith(ctx, addr, model, channels, caps)
}
