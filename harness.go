package varade

import (
	"fmt"
	"time"

	"varade/internal/baselines/ae"
	"varade/internal/baselines/arlstm"
	"varade/internal/baselines/gbrf"
	"varade/internal/baselines/iforest"
	"varade/internal/baselines/knn"
	"varade/internal/core"
	"varade/internal/edge"
	"varade/internal/eval"
	"varade/internal/nn"
)

// Scale selects the experiment size.
type Scale int

const (
	// ScaleSmall uses reduced architectures and dataset durations so the
	// full six-detector comparison completes in well under a minute on a
	// single CPU core. Accuracy numbers come from this scale.
	ScaleSmall Scale = iota
	// ScalePaper uses the exact architectures of §3.1/§3.3 (T=512, 128→1024
	// maps; 5×256 LSTM; six-block AE on 512 windows). Training these in
	// pure Go is infeasible, so ScalePaper instruments *inference cost*
	// (which does not depend on the weights) for Table 2's Hz column.
	ScalePaper
)

// NamedDetector pairs a Detector with the metadata the edge profiler
// needs.
type NamedDetector struct {
	Detector   Detector
	Kind       edge.Kind
	ModelBytes int64
}

// BuildDetectors constructs the paper's six detectors for a stream of the
// given width. Order matches Table 2: AR-LSTM, GBRF, AE, kNN, Isolation
// Forest, VARADE.
func BuildDetectors(channels int, scale Scale) ([]NamedDetector, error) {
	var (
		vcfg core.Config
		lcfg arlstm.Config
		acfg ae.Config
		gcfg gbrf.Config
	)
	switch scale {
	case ScaleSmall:
		vcfg = core.EdgeConfig(channels)
		lcfg = arlstm.EdgeConfig(channels)
		acfg = ae.EdgeConfig(channels)
		gcfg = gbrf.EdgeConfig(channels)
	case ScalePaper:
		vcfg = core.PaperConfig(channels)
		lcfg = arlstm.PaperConfig(channels)
		acfg = ae.PaperConfig(channels)
		gcfg = gbrf.PaperConfig(channels)
		// Feature subsampling during the timing fit: a tree's *inference*
		// cost depends only on ensemble size and depth, and exact CART
		// splits over all window×channel features would take hours on one
		// core without changing the measured prediction cost.
		gcfg.Tree.MaxFeatures = 24
	default:
		return nil, fmt.Errorf("varade: unknown scale %d", scale)
	}
	vm, err := core.New(vcfg)
	if err != nil {
		return nil, err
	}
	lm, err := arlstm.New(lcfg)
	if err != nil {
		return nil, err
	}
	am, err := ae.New(acfg)
	if err != nil {
		return nil, err
	}
	gm, err := gbrf.New(gcfg)
	if err != nil {
		return nil, err
	}
	kcfg := knn.PaperConfig()
	if scale == ScalePaper {
		// The paper's kNN scans the full training recording, which is what
		// makes it the slowest detector in Table 2; keep everything.
		kcfg.MaxSamples = 0
	}
	km, err := knn.New(kcfg)
	if err != nil {
		return nil, err
	}
	fm, err := iforest.New(iforest.PaperConfig())
	if err != nil {
		return nil, err
	}
	const f64 = 8
	return []NamedDetector{
		{Detector: lm, Kind: edge.KindNeural, ModelBytes: int64(nn.NumParams(lm.Params())) * f64},
		{Detector: gm, Kind: edge.KindForest, ModelBytes: 2e6},
		{Detector: am, Kind: edge.KindNeural, ModelBytes: int64(nn.NumParams(am.Params())) * f64},
		{Detector: km, Kind: edge.KindSearch, ModelBytes: int64(km.Config().MaxSamples * channels * f64)},
		{Detector: fm, Kind: edge.KindForest, ModelBytes: 1e6},
		{Detector: vm, Kind: edge.KindNeural, ModelBytes: int64(vm.NumParams()) * f64},
	}, nil
}

// AccuracyResult is one detector's accuracy on a dataset. AUCROC is the
// threshold-free point-level metric of §4.3; AUCAdjusted applies the
// standard point-adjust protocol (an event counts as detected when any of
// its points fires), matching how the paper's 125 discrete collisions are
// counted.
type AccuracyResult struct {
	Name        string
	AUCROC      float64
	AUCAdjusted float64
	FitSec      float64
}

// RunAccuracy fits every detector on ds.Train and evaluates AUC-ROC on
// ds.Test against the collision labels.
func RunAccuracy(dets []NamedDetector, ds *Dataset) ([]AccuracyResult, error) {
	out := make([]AccuracyResult, 0, len(dets))
	for _, nd := range dets {
		start := time.Now()
		if err := nd.Detector.Fit(ds.Train); err != nil {
			return nil, fmt.Errorf("fit %s: %w", nd.Detector.Name(), err)
		}
		fitSec := time.Since(start).Seconds()
		scores := ScoreSeriesBatched(nd.Detector, ds.Test)
		out = append(out, AccuracyResult{
			Name:        nd.Detector.Name(),
			AUCROC:      AUCROC(scores, ds.Labels),
			AUCAdjusted: eval.AUCROCAdjusted(scores, ds.Labels),
			FitSec:      fitSec,
		})
	}
	return out, nil
}

// MeasureWorkloads times each (already fitted) detector's inference on
// real windows from series and packages the results for the edge profiler.
// aucByName attaches accuracy measured separately (accuracy is hardware-
// and scale-independent in the board model).
func MeasureWorkloads(dets []NamedDetector, series *Tensor, minReps int, aucByName map[string]float64) []Workload {
	out := make([]Workload, 0, len(dets))
	for _, nd := range dets {
		sec := edge.MeasureSecPerInf(nd.Detector, series, minReps)
		out = append(out, Workload{
			Name:            nd.Detector.Name(),
			Kind:            nd.Kind,
			HostSecPerInf:   sec,
			ModelBytes:      nd.ModelBytes,
			WorkingSetBytes: int64(nd.Detector.WindowSize() * series.Dim(1) * 8),
			AUCROC:          aucByName[nd.Detector.Name()],
		})
	}
	return out
}

// Table2 runs the full comparison: accuracy at small scale on the reduced
// channel subset, inference cost at the requested scale on the full-width
// stream, mapped onto both boards. It returns one row set per board in the
// paper's order.
func Table2(scale Scale, seed uint64) (idle []BoardReport, rows [][]BoardReport, err error) {
	acc, err := quickAccuracy(seed)
	if err != nil {
		return nil, nil, err
	}
	aucByName := map[string]float64{}
	for _, a := range acc {
		aucByName[a.Name] = a.AUCROC
	}

	// Inference-cost measurement on the full 86-channel stream.
	timing, err := BuildDetectors(NumChannels, scale)
	if err != nil {
		return nil, nil, err
	}
	cfg := SmallDatasetConfig()
	cfg.Sim.Seed = seed
	cfg.TrainSeconds, cfg.TestSeconds, cfg.Collisions = 200, 120, 8
	ds, err := GenerateDataset(cfg)
	if err != nil {
		return nil, nil, err
	}
	// Fit cheaply: inference cost does not depend on the weights, and the
	// tree/neighbour models need realistic structure sizes. At paper scale
	// the neighbour search gets a long recording, because its inference
	// cost is proportional to the retained training set.
	searchSeries := ds.Train
	if scale == ScalePaper {
		longCfg := SmallDatasetConfig()
		longCfg.Sim.Seed = seed
		longCfg.TrainSeconds, longCfg.TestSeconds, longCfg.Collisions = 2000, 10, 1
		longDS, err := GenerateDataset(longCfg)
		if err != nil {
			return nil, nil, err
		}
		searchSeries = longDS.Train
	}
	for _, nd := range timing {
		if err := fitForTiming(nd, ds, searchSeries); err != nil {
			return nil, nil, err
		}
	}
	reps := 3 // paper-scale models cost up to seconds per inference
	if scale == ScaleSmall {
		reps = 50
	}
	loads := MeasureWorkloads(timing, ds.Test, reps, aucByName)

	boards := []Platform{XavierNX(), AGXOrin()}
	rows = make([][]BoardReport, len(boards))
	for i, b := range boards {
		idle = append(idle, b.IdleReport())
		for _, w := range loads {
			rows[i] = append(rows[i], b.Profile(w))
		}
	}
	return idle, rows, nil
}

// fitForTiming prepares a detector for cost measurement without paying a
// full training run: neural nets keep their random weights (same FLOPs),
// tree and neighbour models fit on a short slice so their data structures
// have realistic shape.
func fitForTiming(nd NamedDetector, ds *Dataset, searchSeries *Tensor) error {
	switch nd.Kind {
	case edge.KindNeural:
		return nil
	case edge.KindSearch:
		return nd.Detector.Fit(searchSeries)
	default:
		n := ds.Train.Dim(0)
		if n > 3000 {
			n = 3000
		}
		return nd.Detector.Fit(ds.Train.SliceRows(0, n))
	}
}

// quickAccuracy runs the small-scale six-detector accuracy experiment on
// the reduced channel subset.
func quickAccuracy(seed uint64) ([]AccuracyResult, error) {
	cfg := SmallDatasetConfig()
	cfg.Sim.Seed = seed
	ds, err := GenerateDataset(cfg)
	if err != nil {
		return nil, err
	}
	sub := &Dataset{
		Train:  SelectChannels(ds.Train, InterestingChannels()),
		Test:   SelectChannels(ds.Test, InterestingChannels()),
		Labels: ds.Labels,
		Events: ds.Events,
		Rate:   ds.Rate,
	}
	dets, err := BuildDetectors(len(InterestingChannels()), ScaleSmall)
	if err != nil {
		return nil, err
	}
	return RunAccuracy(dets, sub)
}
