// Command varade-detect scores a live sample stream with a trained VARADE
// model. Samples arrive as CSV lines on stdin or from a TCP sample server
// (see cmd/varade-train and internal/stream); one "index,score,alert" line
// is emitted per scored sample.
//
//	varade-detect -model model.vnn < stream.csv
//	varade-detect -model model.vnn -addr 127.0.0.1:7777
//
// Models saved by current varade-train carry a config header, so the
// architecture flags (-channels, -window, -maps, -kl) are only needed for
// bare legacy weight files.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"varade"
	"varade/internal/modelio"
	"varade/internal/stream"
)

func main() {
	modelPath := flag.String("model", "varade-model.vnn", "weights produced by varade-train")
	channels := flag.Int("channels", 0, "stream channel count (required only for headerless weight files)")
	window := flag.Int("window", 32, "context window T the model was trained with")
	maps := flag.Int("maps", 16, "base feature maps the model was trained with")
	kl := flag.Float64("kl", 0.1, "KL weight the model was trained with")
	addr := flag.String("addr", "", "TCP sample server to connect to (default: read stdin)")
	threshold := flag.Float64("threshold", 0, "alert threshold; 0 prints raw scores only")
	batch := flag.Int("batch", 1, "micro-batch size for the batched scoring engine; 1 = per-sample latency, larger values trade emission latency for throughput when replaying recordings")
	flag.Parse()

	// Models saved with a config header are self-describing: the
	// architecture (and channel count) comes from the file and the
	// -window/-maps/-kl/-channels flags are not needed. Bare legacy weight
	// files still load through the flag-described architecture.
	var model *varade.Model
	kind, err := modelio.SniffKind(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	if kind != "" {
		if model, err = varade.LoadModel(*modelPath); err != nil {
			log.Fatal(err)
		}
		*channels = model.Config().Channels
	} else {
		if *channels <= 0 {
			log.Fatal("varade-detect: -channels is required for headerless weight files")
		}
		cfg := varade.Config{Window: *window, Channels: *channels, BaseMaps: *maps, KLWeight: *kl, Seed: 1}
		if model, err = varade.New(cfg); err != nil {
			log.Fatal(err)
		}
		if err := model.Load(*modelPath); err != nil {
			log.Fatal(err)
		}
	}

	runner := varade.NewRunner(model, *channels)
	emit := func(s varade.StreamScore) {
		if *threshold > 0 {
			fmt.Printf("%d,%.6g,%v\n", s.Index, s.Value, s.Value > *threshold)
		} else {
			fmt.Printf("%d,%.6g\n", s.Index, s.Value)
		}
	}

	if *addr != "" {
		if err := stream.DialAndScoreBatched(context.Background(), *addr, *channels, runner, *batch, emit); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *batch > 1 {
		err = stream.ReadSampleBatches(os.Stdin, *channels, *batch, func(samples [][]float64) bool {
			for _, s := range runner.PushBatch(samples) {
				emit(s)
			}
			return true
		})
	} else {
		err = stream.ReadSamples(os.Stdin, *channels, func(sample []float64) bool {
			if s, ok := runner.Push(sample); ok {
				emit(s)
			}
			return true
		})
	}
	if err != nil {
		log.Fatal(err)
	}
}
