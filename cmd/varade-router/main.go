// Command varade-router is the routing plane of the sharded serving
// tier: one listener accepting fleet sessions (binary v1/v2 framing or
// CSV lines) that it proxies to a fleet of backend varade-serve
// processes by capability and load.
//
// Start a router, then point backends at its control endpoint:
//
//	varade-router -addr :7777 -control :7780
//	varade-serve -registry ./models -model varade -addr :7781 -metrics :7791 \
//	    -announce http://localhost:7780 -backend-id b1
//	varade-serve -registry ./models -model varade -addr :7782 -metrics :7792 \
//	    -announce http://localhost:7780 -backend-id b2
//
// Clients dial the router exactly as they would a single varade-serve —
// both protocol versions work unchanged; a v2 Welcome additionally
// names the chosen backend. Placement: sessions consistent-hash on
// model@version:precision over the per-precision backend pool, so one
// model's sessions co-batch on the same backend; ties between the top
// ring candidates break toward the least-loaded backend
// (backend-reported live sessions plus the router's own in-flight
// placements). Backends that stop announcing (TTL), announce Draining,
// or refuse a dial are drained from the ring.
//
// Sessions survive their backend: when a backend dies mid-stream
// (connection drop, dial failure, or heartbeat TTL expiry) the router
// re-places the session on the ring-order survivor with capped
// exponential backoff under -handoff-deadline, replays the handshake,
// warms the new backend from a bounded replay ring of the session's
// recent samples (-replay-extra rows past the model window), and
// suppresses duplicate warmup scores — the client keeps its single
// connection and a bit-identical score stream. Sessions arriving while
// the pool is empty wait in a bounded admission queue
// (-admission-queue, -admission-wait) before being refused with a
// reasoned v2 Bye.
//
// On the control address: POST /register receives announcements,
// GET /metrics serves the aggregated fleet exposition (the router's own
// varade_router_* series, every backend's /metrics relabeled with
// backend="<id>", and fleet-wide merged histograms), GET /models shows
// backends and ring placements, POST /reload?model= hot-swaps the
// model fleet-wide one backend at a time (stopping at the first
// failure), GET /healthz summarises health.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"varade/internal/route"
)

func main() {
	addr := flag.String("addr", ":7777", "fleet session listen address")
	control := flag.String("control", ":7780", "control/metrics HTTP listen address")
	defaultModel := flag.String("model", "varade", "placement reference for sessions that name no model (CSV sessions always use it)")
	ttl := flag.Duration("ttl", 5*time.Second, "backend registration TTL; backends that stop announcing for this long leave the ring")
	relayDepth := flag.Int("relay-depth", 256, "per-direction frame queue of a proxied session; the oldest queued frames shed past it")
	dialTimeout := flag.Duration("dial-timeout", 2*time.Second, "one backend connection attempt")
	handoffDeadline := flag.Duration("handoff-deadline", 10*time.Second, "how long a session whose backend died retries re-placement before ending with a reasoned Bye")
	redialBackoff := flag.Duration("redial-backoff", 25*time.Millisecond, "base delay between re-placement dials, doubling per attempt with jitter")
	replayExtra := flag.Int("replay-extra", 32, "sample rows kept for hand-off warmup beyond the model window (recovers windows in flight at the kill)")
	admissionWait := flag.Duration("admission-wait", 5*time.Second, "how long a new session may wait in the admission queue for a healthy backend")
	admissionQueue := flag.Int("admission-queue", 256, "sessions allowed to wait for a backend at once; past it new sessions are refused immediately")
	reloadTimeout := flag.Duration("reload-timeout", 10*time.Second, "per-backend timeout of an orchestrated POST /reload fan-out")
	flag.Parse()

	rt := route.NewRouter(route.Config{
		DefaultModel:    *defaultModel,
		TTL:             *ttl,
		RelayDepth:      *relayDepth,
		DialTimeout:     *dialTimeout,
		HandoffDeadline: *handoffDeadline,
		RedialBackoff:   *redialBackoff,
		ReplayExtra:     *replayExtra,
		AdmissionWait:   *admissionWait,
		AdmissionQueue:  *admissionQueue,
		ReloadTimeout:   *reloadTimeout,
	})
	bound, err := rt.Serve(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("varade-router: sessions on %s\n", bound)
	ctl, err := rt.ServeControl(*control)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("varade-router: control on http://%s (register/metrics/models/healthz)\n", ctl)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("varade-router: shutting down…")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		log.Printf("varade-router: shutdown incomplete: %v", err)
	}
	snap := rt.Models()
	for _, b := range snap.Backends {
		fmt.Printf("  backend %-12s %-21s healthy=%-5v proxied %d sessions\n",
			b.ID, b.Addr, b.Healthy, b.Proxied)
	}
}
