// Command varade-router is the routing plane of the sharded serving
// tier: one listener accepting fleet sessions (binary v1/v2 framing or
// CSV lines) that it proxies to a fleet of backend varade-serve
// processes by capability and load.
//
// Start a router, then point backends at its control endpoint:
//
//	varade-router -addr :7777 -control :7780
//	varade-serve -registry ./models -model varade -addr :7781 -metrics :7791 \
//	    -announce http://localhost:7780 -backend-id b1
//	varade-serve -registry ./models -model varade -addr :7782 -metrics :7792 \
//	    -announce http://localhost:7780 -backend-id b2
//
// Clients dial the router exactly as they would a single varade-serve —
// both protocol versions work unchanged; a v2 Welcome additionally
// names the chosen backend. Placement: sessions consistent-hash on
// model@version:precision over the per-precision backend pool, so one
// model's sessions co-batch on the same backend; ties between the top
// ring candidates break toward the least-loaded backend
// (backend-reported live sessions plus the router's own in-flight
// placements). Backends that stop announcing (TTL), announce Draining,
// or refuse a dial are drained from the ring; a reconnecting client
// lands on a healthy backend.
//
// On the control address: POST /register receives announcements,
// GET /metrics serves the aggregated fleet exposition (the router's own
// varade_router_* series, every backend's /metrics relabeled with
// backend="<id>", and fleet-wide merged histograms), GET /models shows
// backends and ring placements, GET /healthz summarises health.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"varade/internal/route"
)

func main() {
	addr := flag.String("addr", ":7777", "fleet session listen address")
	control := flag.String("control", ":7780", "control/metrics HTTP listen address")
	defaultModel := flag.String("model", "varade", "placement reference for sessions that name no model (CSV sessions always use it)")
	ttl := flag.Duration("ttl", 5*time.Second, "backend registration TTL; backends that stop announcing for this long leave the ring")
	relayDepth := flag.Int("relay-depth", 256, "per-direction frame queue of a proxied session; the oldest queued frames shed past it")
	dialTimeout := flag.Duration("dial-timeout", 2*time.Second, "one backend connection attempt")
	flag.Parse()

	rt := route.NewRouter(route.Config{
		DefaultModel: *defaultModel,
		TTL:          *ttl,
		RelayDepth:   *relayDepth,
		DialTimeout:  *dialTimeout,
	})
	bound, err := rt.Serve(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("varade-router: sessions on %s\n", bound)
	ctl, err := rt.ServeControl(*control)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("varade-router: control on http://%s (register/metrics/models/healthz)\n", ctl)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("varade-router: shutting down…")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		log.Printf("varade-router: shutdown incomplete: %v", err)
	}
	snap := rt.Models()
	for _, b := range snap.Backends {
		fmt.Printf("  backend %-12s %-21s healthy=%-5v proxied %d sessions\n",
			b.ID, b.Addr, b.Healthy, b.Proxied)
	}
}
