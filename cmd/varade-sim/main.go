// Command varade-sim generates the simulated testbed dataset and writes it
// as CSV — the reproduction's counterpart of the paper's public RoAD
// recording. It emits a normalised training stream, a test stream with
// injected collisions, and the ground-truth labels.
//
//	varade-sim -dir data/                        # small protocol
//	varade-sim -dir data/ -protocol paper        # 390 min train, 125 events
//	varade-sim -dir data/ -raw                   # skip normalisation
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"varade"
	"varade/internal/robot"
	"varade/internal/stream"
	"varade/internal/tensor"
)

func main() {
	dir := flag.String("dir", ".", "output directory")
	protocol := flag.String("protocol", "small", "dataset protocol: small|paper")
	seed := flag.Uint64("seed", 42, "simulation seed")
	subset := flag.Bool("subset", false, "emit only the compact channel subset")
	flag.Parse()

	var cfg varade.DatasetConfig
	switch *protocol {
	case "small":
		cfg = varade.SmallDatasetConfig()
	case "paper":
		cfg = varade.PaperDatasetConfig()
	default:
		log.Fatalf("varade-sim: unknown protocol %q", *protocol)
	}
	cfg.Sim.Seed = *seed

	fmt.Printf("generating %s protocol (train %.0fs, test %.0fs, %d collisions)…\n",
		*protocol, cfg.TrainSeconds, cfg.TestSeconds, cfg.Collisions)
	ds, err := varade.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	train, test := ds.Train, ds.Test
	if *subset {
		idx := varade.InterestingChannels()
		train = varade.SelectChannels(train, idx)
		test = varade.SelectChannels(test, idx)
	}

	if err := writeCSV(filepath.Join(*dir, "train.csv"), train); err != nil {
		log.Fatal(err)
	}
	if err := writeCSV(filepath.Join(*dir, "test.csv"), test); err != nil {
		log.Fatal(err)
	}
	if err := writeLabels(filepath.Join(*dir, "labels.csv"), ds.Labels); err != nil {
		log.Fatal(err)
	}
	if err := writeEvents(filepath.Join(*dir, "events.csv"), ds.Events, ds.Rate); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote train.csv (%d×%d), test.csv (%d×%d), labels.csv, events.csv to %s\n",
		train.Dim(0), train.Dim(1), test.Dim(0), test.Dim(1), *dir)
}

func writeCSV(path string, series *tensor.Tensor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for i := 0; i < series.Dim(0); i++ {
		if _, err := w.WriteString(stream.EncodeSample(series.Row(i).Data()) + "\n"); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeLabels(path string, labels []bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, l := range labels {
		v := "0"
		if l {
			v = "1"
		}
		if _, err := w.WriteString(v + "\n"); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeEvents(path string, events []robot.CollisionEvent, rate float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "start_sample,end_sample,start_seconds,duration_seconds,joints")
	for _, e := range events {
		fmt.Fprintf(w, "%d,%d,%.2f,%.2f,%v\n",
			e.Start, e.End, float64(e.Start)/rate, float64(e.End-e.Start)/rate, e.Joints)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
