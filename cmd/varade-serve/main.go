// Command varade-serve is the fleet server: it serves many concurrent
// device sessions from a registry of named, versioned detectors, with
// ready windows coalesced across sessions into batched forward passes.
//
// Serve a registry (train a model first with varade-train):
//
//	varade-train -out model.vmf
//	varade-serve -registry ./models -import model.vmf -as varade
//	varade-serve -registry ./models -model varade -addr :7777 -metrics :7778
//
// Devices connect with the binary fleet framing — protocol v1
// (serve.Dial) or the capability-negotiated protocol v2 (serve.DialWith,
// which can request a serving precision, a score-frame cap and a drop
// policy in its Hello; a v2 session asking for int8 against a float64
// registry entry gets a lazily derived int8 serving group) — or the
// plain CSV line protocol:
//
//	varade-sim -addr ... | nc localhost 7777
//
// Batching is closed-loop: each serving group learns its fill target
// from its own measured amortisation curve, and -slo-p99 (negotiable per
// v2 session via the slo_p99_ms capability) turns the flush into a
// deadline against the oldest admitted window instead of a fixed ticker.
//
// GET /metrics on the metrics address returns Prometheus text exposition
// (stage timers, coalesce-latency histograms, amortisation counters,
// varade_sched_* scheduler series, all
// labeled by group/precision/stage); GET /metrics.json keeps the JSON
// snapshot (sessions, scored/s, drops, coalesce-latency percentiles,
// per-group stage stats and score distributions); GET /sessions lists
// live sessions with per-session score sketches and drift z-scores;
// GET /models lists the registry plus the live serving groups;
// POST /reload?model=NAME hot-swaps live sessions — every
// derived-precision group of the model moves together — to the latest
// registered version. -pprof additionally mounts net/http/pprof under
// /debug/pprof/ on the metrics address.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"varade/internal/serve"
)

func main() {
	registryDir := flag.String("registry", "./models", "model registry directory")
	model := flag.String("model", "", "default model reference (name or name@vN) for connecting sessions")
	addr := flag.String("addr", ":7777", "device session listen address")
	metricsAddr := flag.String("metrics", ":7778", "metrics HTTP listen address (empty disables)")
	flush := flag.Duration("flush", 2*time.Millisecond, "coalescer flush interval (deadline fallback when no SLO is set)")
	sloP99 := flag.Duration("slo-p99", 0, "per-group p99 coalesce-latency SLO; flushes are deadline-scheduled against it (0 disables, v2 sessions may tighten it)")
	sloShed := flag.Bool("slo-shed", false, "shed windows already past the -slo-p99 budget at admission (varade_sched_shed_total) instead of scoring them late; sessions lose the exact-count score guarantee")
	batch := flag.Int("batch", 0, "coalescer max batch (0 = engine default)")
	queue := flag.Int("queue", 0, "per-session admission queue depth (0 = default)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof on the metrics address under /debug/pprof/")
	announce := flag.String("announce", "", "varade-router control URL (e.g. http://host:7780) to register this backend with")
	backendID := flag.String("backend-id", "", "backend name announced to the router (default host:port of the session listener)")
	announceEvery := flag.Duration("announce-every", time.Second, "router registration heartbeat interval")
	importPath := flag.String("import", "", "import a saved model file into the registry and exit")
	importAs := flag.String("as", "", "registry name for -import")
	list := flag.Bool("list", false, "list registry contents and exit")
	flag.Parse()

	reg, err := serve.OpenRegistry(*registryDir)
	if err != nil {
		log.Fatal(err)
	}

	if *list {
		for _, info := range reg.List() {
			fmt.Printf("%-24s %-18s versions %v\n", info.Name, info.Kind, info.Versions)
		}
		return
	}
	if *importPath != "" {
		if *importAs == "" {
			log.Fatal("varade-serve: -import needs -as NAME")
		}
		v, err := reg.Import(*importPath, *importAs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered %s@v%d from %s\n", *importAs, v, *importPath)
		return
	}
	if *model == "" {
		log.Fatal("varade-serve: -model is required (or use -import/-list)")
	}

	srv, err := serve.NewServer(serve.Config{
		Registry:      reg,
		DefaultModel:  *model,
		FlushInterval: *flush,
		SLOP99:        *sloP99,
		ShedAdmission: *sloShed,
		MaxBatch:      *batch,
		QueueDepth:    *queue,
		EnablePprof:   *pprofOn,
	})
	if err != nil {
		log.Fatal(err)
	}
	bound, err := srv.Serve(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("varade-serve: sessions on %s (model %s)\n", bound, *model)
	maddr := ""
	if *metricsAddr != "" {
		maddr, err = srv.ServeMetrics(*metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("varade-serve: metrics on http://%s/metrics (JSON at /metrics.json, sessions at /sessions)\n", maddr)
		if *pprofOn {
			fmt.Printf("varade-serve: pprof on http://%s/debug/pprof/\n", maddr)
		}
	}
	if *announce != "" {
		id := *backendID
		if id == "" {
			id = bound
		}
		if err := srv.StartAnnouncer(*announce, id, bound, maddr, *announceEvery); err != nil {
			log.Fatalf("varade-serve: router registration failed: %v", err)
		}
		fmt.Printf("varade-serve: announcing as %q to %s every %s\n", id, *announce, *announceEvery)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("varade-serve: draining…")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("varade-serve: drain incomplete: %v", err)
	}
	m := srv.Metrics()
	fmt.Printf("varade-serve: served %d sessions, %d windows in %d batches (avg %.1f), %d sample drops, p99 coalesce %.2fms\n",
		m.TotalSessions, m.WindowsScored, m.Batches, m.AvgBatchSize, m.SamplesDropped, m.P99CoalesceMs)
	fmt.Printf("varade-serve: %d serving groups (%d derived-precision)\n", m.ServingGroups, m.DerivedGroups)
	for _, g := range m.Models {
		fmt.Printf("  %-28s %-8s v%-3d %d sessions\n", g.Key, g.Precision, g.Version, g.Sessions)
		if s := g.Scheduler; s != nil {
			fmt.Printf("    scheduler: fill target %d (static %d), flushes fill/deadline/drain %d/%d/%d",
				s.FillTarget, s.StaticTarget, s.FillFlushes, s.DeadlineFlushes, s.DrainFlushes)
			if s.SLOP99Ms > 0 {
				fmt.Printf(", slo p99 %.1fms (budget %.2fms)", s.SLOP99Ms, s.DeadlineBudgetMs)
			}
			fmt.Println()
			if s.LastChange != "" {
				fmt.Printf("    scheduler: last decision: %s\n", s.LastChange)
			}
		}
	}
}
