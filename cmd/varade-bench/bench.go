package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"varade"
	"varade/internal/core"
	"varade/internal/detect"
	"varade/internal/tensor"
)

// The machine-readable benchmark suite: `varade-bench -exp bench -json
// BENCH_pr3.json` runs the precision-axis micro-benchmarks and writes one
// JSON object per benchmark, so the perf trajectory is trackable across
// PRs without parsing `go test -bench` text output.
//
// Timing is deliberately noise-robust for shared/1-core CI boxes: each
// benchmark runs a fixed iteration count for several rounds and records
// the fastest round (scheduler preemption and neighbour load only ever
// slow a round down, so the minimum is the least-contended estimate).

// BenchResult is one benchmark's machine-readable record.
type BenchResult struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	WindowsPerSec float64 `json:"windows_per_sec,omitempty"`
	Iterations    int     `json:"iterations"`
	Rounds        int     `json:"rounds"`
}

const (
	benchRounds      = 5
	benchTargetRound = 400 * time.Millisecond
)

// benchCase is one suite entry.
type benchCase struct {
	name    string
	windows int // per op, 0 for non-streaming benchmarks
	fn      func(iters int)
}

// measureSuite times every case over benchRounds interleaved rounds
// (case A round 1, case B round 1, …, case A round 2, …) and keeps each
// case's fastest round. Interleaving matters on shared hosts: slow spells
// hit neighbouring cases equally instead of biasing whichever case ran
// during the throttled window, so cross-case ratios stay meaningful.
func measureSuite(cases []benchCase) []BenchResult {
	iters := make([]int, len(cases))
	allocs := make([]int64, len(cases))
	best := make([]time.Duration, len(cases))
	for i, c := range cases {
		c.fn(1) // warm caches, pools and lazily compiled programs
		start := time.Now()
		c.fn(1)
		per := time.Since(start)
		iters[i] = 1
		if per > 0 {
			iters[i] = int(benchTargetRound / per)
		}
		if iters[i] < 1 {
			iters[i] = 1
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		c.fn(1)
		runtime.ReadMemStats(&ms1)
		allocs[i] = int64(ms1.Mallocs - ms0.Mallocs)
		best[i] = 1<<62 - 1
	}
	for r := 0; r < benchRounds; r++ {
		for i, c := range cases {
			t0 := time.Now()
			c.fn(iters[i])
			if d := time.Since(t0); d < best[i] {
				best[i] = d
			}
		}
	}
	results := make([]BenchResult, len(cases))
	for i, c := range cases {
		res := BenchResult{
			Name:        c.name,
			NsPerOp:     float64(best[i].Nanoseconds()) / float64(iters[i]),
			AllocsPerOp: allocs[i],
			Iterations:  iters[i],
			Rounds:      benchRounds,
		}
		if c.windows > 0 && res.NsPerOp > 0 {
			res.WindowsPerSec = float64(c.windows) * 1e9 / res.NsPerOp
		}
		results[i] = res
	}
	return results
}

func runBenchSuite(jsonPath string, seed uint64) error {
	// A small fitted model shared by the score-stream benchmarks: seeded
	// initialisation scores at the same cost as a trained one.
	const channels = 17
	model, err := core.New(core.EdgeConfig(channels))
	if err != nil {
		return err
	}
	rng := tensor.NewRNG(seed)
	// 16384 steps ≈ 2.2 MB of float64 stream: comfortably past the L2 a
	// 1-core container gets, so the float64 path pays its full memory
	// bandwidth and the precision comparison is stable run to run instead
	// of hinging on cache-residency luck.
	series := tensor.New(16384, channels)
	sd := series.Data()
	for i := range sd {
		sd[i] = rng.NormFloat64()
	}
	windows := series.Dim(0)

	scoreStream := func(precision string) func(iters int) {
		return func(iters int) {
			if err := model.SetPrecision(precision); err != nil {
				panic(err)
			}
			for i := 0; i < iters; i++ {
				detect.ScoreSeriesBatched(model, series)
			}
		}
	}

	const mmN = 128
	x64 := tensor.RandNormal(tensor.NewRNG(1), 0, 1, mmN, mmN)
	y64 := tensor.RandNormal(tensor.NewRNG(2), 0, 1, mmN, mmN)
	dst64 := tensor.New(mmN, mmN)
	x32 := tensor.Convert[float32](x64)
	y32 := tensor.Convert[float32](y64)
	dst32 := tensor.NewOf[float32](mmN, mmN)

	suite := []benchCase{
		{"MatMul128", 0, func(n int) {
			for i := 0; i < n; i++ {
				tensor.MatMulInto(dst64, x64, y64)
			}
		}},
		{"MatMul128F32", 0, func(n int) {
			for i := 0; i < n; i++ {
				tensor.MatMulInto(dst32, x32, y32)
			}
		}},
		{"MatMulTransB128", 0, func(n int) {
			for i := 0; i < n; i++ {
				tensor.MatMulTransBInto(dst64, x64, y64)
			}
		}},
		{"MatMulTransB128F32", 0, func(n int) {
			for i := 0; i < n; i++ {
				tensor.MatMulTransBInto(dst32, x32, y32)
			}
		}},
		{"Figure3ScoreStream", windows, scoreStream(varade.PrecisionFloat64)},
		{"Figure3ScoreStreamF32", windows, scoreStream(varade.PrecisionFloat32)},
		{"Figure3ScoreStreamInt8", windows, scoreStream(varade.PrecisionInt8)},
	}

	results := measureSuite(suite)
	for _, res := range results {
		if res.WindowsPerSec > 0 {
			fmt.Printf("%-24s %12.0f ns/op %8d allocs/op %12.0f windows/s\n",
				res.Name, res.NsPerOp, res.AllocsPerOp, res.WindowsPerSec)
		} else {
			fmt.Printf("%-24s %12.0f ns/op %8d allocs/op\n", res.Name, res.NsPerOp, res.AllocsPerOp)
		}
	}

	if jsonPath != "" {
		blob, err := json.MarshalIndent(map[string]any{"benchmarks": results}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return nil
}
