package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"varade"
	"varade/internal/baselines/arlstm"
	"varade/internal/core"
	"varade/internal/detect"
	"varade/internal/obs"
	"varade/internal/route"
	"varade/internal/serve"
	"varade/internal/stream"
	"varade/internal/tensor"
)

// The machine-readable benchmark suite: `varade-bench -exp bench -json
// BENCH_pr3.json` runs the precision-axis micro-benchmarks and writes one
// JSON object per benchmark, so the perf trajectory is trackable across
// PRs without parsing `go test -bench` text output.
//
// Timing is deliberately noise-robust for shared/1-core CI boxes: each
// benchmark runs a fixed iteration count for several rounds and records
// the fastest round (scheduler preemption and neighbour load only ever
// slow a round down, so the minimum is the least-contended estimate).

// BenchResult is one benchmark's machine-readable record.
type BenchResult struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	WindowsPerSec float64 `json:"windows_per_sec,omitempty"`
	Iterations    int     `json:"iterations"`
	Rounds        int     `json:"rounds"`
	// StageNsPerWindow breaks the op down by compute stage (quantize,
	// pack, gemm, requant) as ns/window, sampled from the process-global
	// stage timers over one profiled run. Absent in pre-PR-7 baselines
	// and for benchmarks without a windows metric.
	StageNsPerWindow map[string]float64 `json:"stage_ns_per_window,omitempty"`
	// P50/P99CoalesceMs are the server-measured coalesce-latency
	// percentiles for serving lanes with bursty admission. Informational:
	// -diff renders them but never gates on them (latency under sleeps is
	// too host-sensitive for a hard threshold). Absent elsewhere.
	P50CoalesceMs float64 `json:"p50_coalesce_ms,omitempty"`
	P99CoalesceMs float64 `json:"p99_coalesce_ms,omitempty"`
	// Handoffs/HandoffP99Ms are the failover lane's hand-off plane: how
	// many sessions the router re-placed after the mid-run backend kill
	// and the router-measured detection-to-warmed p99. Informational like
	// the coalesce percentiles: -diff renders them but never gates (dial
	// and scheduler costs dominate and are host-sensitive). Absent
	// elsewhere.
	Handoffs     int64   `json:"handoffs,omitempty"`
	HandoffP99Ms float64 `json:"handoff_p99_ms,omitempty"`
}

const (
	benchRounds      = 5
	benchTargetRound = 400 * time.Millisecond
)

// snapStages folds the process-global compute-stage timers into
// per-stage {ns, windows} totals (summed over precisions — a single
// benchmark case only moves one precision's timers).
func snapStages() map[string][2]int64 {
	out := make(map[string][2]int64)
	for _, st := range obs.StagesSnapshot() {
		cur := out[st.Stage]
		cur[0] += st.Ns
		cur[1] += st.Windows
		out[st.Stage] = cur
	}
	return out
}

// stageProfile runs fn once and attributes the compute-stage time that
// accrued to it, as ns/window per stage. Stages the run never touched
// produce no delta and stay out of the map; nil when nothing moved.
func stageProfile(fn func(iters int)) map[string]float64 {
	before := snapStages()
	fn(1)
	after := snapStages()
	var out map[string]float64
	for stage, a := range after {
		b := before[stage]
		if dn, dw := a[0]-b[0], a[1]-b[1]; dn > 0 && dw > 0 {
			if out == nil {
				out = make(map[string]float64)
			}
			out[stage] = float64(dn) / float64(dw)
		}
	}
	return out
}

// benchCase is one suite entry.
type benchCase struct {
	name    string
	windows int // per op, 0 for non-streaming benchmarks
	fn      func(iters int)
}

// measureSuite times every case over benchRounds interleaved rounds
// (case A round 1, case B round 1, …, case A round 2, …) and keeps each
// case's fastest round. Interleaving matters on shared hosts: slow spells
// hit neighbouring cases equally instead of biasing whichever case ran
// during the throttled window, so cross-case ratios stay meaningful.
func measureSuite(cases []benchCase) []BenchResult {
	iters := make([]int, len(cases))
	allocs := make([]int64, len(cases))
	best := make([]time.Duration, len(cases))
	for i, c := range cases {
		c.fn(1) // warm caches, pools and lazily compiled programs
		start := time.Now()
		c.fn(1)
		per := time.Since(start)
		iters[i] = 1
		if per > 0 {
			iters[i] = int(benchTargetRound / per)
		}
		if iters[i] < 1 {
			iters[i] = 1
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		c.fn(1)
		runtime.ReadMemStats(&ms1)
		allocs[i] = int64(ms1.Mallocs - ms0.Mallocs)
		best[i] = 1<<62 - 1
	}
	for r := 0; r < benchRounds; r++ {
		for i, c := range cases {
			t0 := time.Now()
			c.fn(iters[i])
			if d := time.Since(t0); d < best[i] {
				best[i] = d
			}
		}
	}
	results := make([]BenchResult, len(cases))
	for i, c := range cases {
		res := BenchResult{
			Name:        c.name,
			NsPerOp:     float64(best[i].Nanoseconds()) / float64(iters[i]),
			AllocsPerOp: allocs[i],
			Iterations:  iters[i],
			Rounds:      benchRounds,
		}
		if c.windows > 0 && res.NsPerOp > 0 {
			res.WindowsPerSec = float64(c.windows) * 1e9 / res.NsPerOp
		}
		results[i] = res
	}
	return results
}

// fleetMixedBench is the serving-layer suite entry: one float64 registry
// entry, 64 persistent sessions negotiating float64/float32/int8
// round-robin (protocol v2), windows coalesced per precision-specific
// group. Each op replays every device's stream through its live session.
// With burst > 0 admission turns bursty: every session sends burst rows,
// idles gap, repeats — the closed-loop scheduler's deadline lane.
type fleetMixedBench struct {
	sessions, steps int
	w               int
	burst           int
	gap             time.Duration
	regDir          string
	srvs            []*serve.Server
	srv             *serve.Server // srvs[0], for Metrics()
	rt              *route.Router
	clients         []*serve.Client
	rows            [][][]float64
	primed          bool
}

func newFleetMixedBench(seed uint64) (*fleetMixedBench, error) {
	return newFleetBench(seed, 0, 0, 0, 1)
}

// newFleetBurstyBench is the FleetServeBursty64 lane: 12-row admission
// bursts separated by 1ms idle gaps under a 5ms p99 SLO, with a hopeless
// 50ms fallback flush interval — every latency bound the fleet sees must
// come from the SLO deadline scheduler, not the ticker it replaced.
func newFleetBurstyBench(seed uint64) (*fleetMixedBench, error) {
	return newFleetBench(seed, 12, time.Millisecond, 5*time.Millisecond, 1)
}

// newFleetRoutedBench is the FleetServeRouted64 lane: the same mixed
// fleet, but through a varade-router fronting two backend servers over
// one registry — each precision's sessions consistent-hash to one
// backend, so the lane prices the relay hop plus the two-way split.
func newFleetRoutedBench(seed uint64) (*fleetMixedBench, error) {
	return newFleetBench(seed, 0, 0, 0, 2)
}

// newFleetFailoverBench is the FleetServeFailover64 lane's fleet: the
// routed shape again — the kill and the hand-off happen in runFailover,
// not here.
func newFleetFailoverBench(seed uint64) (*fleetMixedBench, error) {
	return newFleetBench(seed, 0, 0, 0, 2)
}

func newFleetBench(seed uint64, burst int, gap, slo time.Duration, backends int) (*fleetMixedBench, error) {
	const (
		sessions = 64
		steps    = 72
		channels = 17
	)
	model, err := core.New(core.EdgeConfig(channels))
	if err != nil {
		return nil, err
	}
	f := &fleetMixedBench{sessions: sessions, steps: steps, w: model.WindowSize(), burst: burst, gap: gap}
	// Any failure below must not strand the temp registry, the server or
	// already-dialed sessions.
	ok := false
	defer func() {
		if !ok {
			f.close()
		}
	}()
	f.regDir, err = os.MkdirTemp("", "varade-bench-registry-")
	if err != nil {
		return nil, err
	}
	reg, err := serve.OpenRegistry(f.regDir)
	if err != nil {
		return nil, err
	}
	if _, err := reg.Register("varade", model); err != nil {
		return nil, err
	}
	flush := time.Millisecond
	if slo > 0 {
		flush = 50 * time.Millisecond // the deadline must carry the latency, not the fallback
	}
	if backends < 1 {
		backends = 1
	}
	addrs := make([]string, backends)
	for i := 0; i < backends; i++ {
		srv, err := serve.NewServer(serve.Config{
			Registry:      reg,
			DefaultModel:  "varade",
			FlushInterval: flush,
			SLOP99:        slo,
			QueueDepth:    steps + 8, // score every window
		})
		if err != nil {
			return nil, err
		}
		f.srvs = append(f.srvs, srv)
		if addrs[i], err = srv.Serve("127.0.0.1:0"); err != nil {
			return nil, err
		}
	}
	f.srv = f.srvs[0]
	addr := addrs[0]
	if backends > 1 {
		f.rt = route.NewRouter(route.Config{DefaultModel: "varade", TTL: time.Hour})
		if addr, err = f.rt.Serve("127.0.0.1:0"); err != nil {
			return nil, err
		}
		for i, baddr := range addrs {
			f.rt.Register(route.Announcement{ID: fmt.Sprintf("b%d", i+1), Addr: baddr})
		}
	}
	precisions := []string{varade.PrecisionFloat64, varade.PrecisionFloat32, varade.PrecisionInt8}
	f.clients = make([]*serve.Client, sessions)
	for id := range f.clients {
		cl, err := serve.DialWith(context.Background(), addr, "", channels,
			stream.SessionCaps{Precision: precisions[id%len(precisions)]})
		if err != nil {
			return nil, err
		}
		f.clients[id] = cl
	}
	f.rows = make([][][]float64, sessions)
	for id := range f.rows {
		rng := tensor.NewRNG(seed + uint64(1000+id))
		f.rows[id] = make([][]float64, steps)
		for r := range f.rows[id] {
			row := make([]float64, channels)
			for c := range row {
				row[c] = rng.NormFloat64()
			}
			f.rows[id][r] = row
		}
	}
	ok = true
	return f, nil
}

// run replays every device stream iters times through the live sessions.
func (f *fleetMixedBench) run(iters int) {
	for it := 0; it < iters; it++ {
		expect := f.steps
		if !f.primed {
			expect = f.steps - f.w + 1 // first pass pays the ring warmup
			f.primed = true
		}
		var wg sync.WaitGroup
		for id := range f.clients {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				cl := f.clients[id]
				step := f.burst
				if step <= 0 {
					step = f.steps
				}
				for off := 0; off < f.steps; off += step {
					end := off + step
					if end > f.steps {
						end = f.steps
					}
					if err := cl.Send(f.rows[id][off:end]); err != nil {
						panic(err)
					}
					if f.gap > 0 && end < f.steps {
						time.Sleep(f.gap)
					}
				}
				for got := 0; got < expect; {
					scores, err := cl.ReadScores()
					if err != nil {
						panic(err)
					}
					got += len(scores)
				}
			}(id)
		}
		wg.Wait()
	}
}

// runFailover is the FleetServeFailover64 op: every session streams the
// first half of its rows in 4-row batches, a barrier force-kills the
// backend serving session 0 (expired-context Shutdown: no drain, live
// connections torn), then the fleet finishes, says Bye and reads scores
// to end-of-stream. The orphaned sessions ride the router's hand-off to
// the survivor; sessions on the survivor are the control group. Scores
// are counted as received — windows in flight past the replay ring may
// legitimately be lost to the crash, so the lane prices survival
// throughput, not completeness. One-shot: a backend only dies once per
// fleet.
func (f *fleetMixedBench) runFailover() (received int64, elapsed time.Duration) {
	victim := f.srvs[0]
	if f.clients[0].Welcome().Backend == "b2" {
		victim = f.srvs[1]
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel() // already expired: Shutdown force-closes instead of draining

	var sent, wg sync.WaitGroup
	sent.Add(len(f.clients))
	killed := make(chan struct{})
	go func() {
		sent.Wait()
		victim.Shutdown(dead)
		close(killed)
	}()

	got := make([]int64, len(f.clients))
	start := time.Now()
	for id := range f.clients {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := f.clients[id]
			send := func(part [][]float64) {
				for off := 0; off < len(part); off += 4 {
					end := off + 4
					if end > len(part) {
						end = len(part)
					}
					if err := cl.Send(part[off:end]); err != nil {
						panic(err)
					}
				}
			}
			mid := f.steps / 2
			send(f.rows[id][:mid])
			sent.Done()
			<-killed
			send(f.rows[id][mid:])
			if err := cl.Bye(); err != nil {
				panic(err)
			}
			for {
				scores, err := cl.ReadScores()
				got[id] += int64(len(scores))
				if err != nil {
					break
				}
			}
		}(id)
	}
	wg.Wait()
	elapsed = time.Since(start)
	for _, n := range got {
		received += n
	}
	return received, elapsed
}

func (f *fleetMixedBench) close() {
	for _, cl := range f.clients {
		if cl != nil {
			cl.Bye()
			cl.Close()
		}
	}
	if f.rt != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		f.rt.Shutdown(ctx)
		cancel()
	}
	for _, srv := range f.srvs {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx)
		cancel()
	}
	if f.regDir != "" {
		os.RemoveAll(f.regDir)
	}
}

func runBenchSuite(jsonPath string, seed uint64) error {
	// A small fitted model shared by the score-stream benchmarks: seeded
	// initialisation scores at the same cost as a trained one.
	const channels = 17
	model, err := core.New(core.EdgeConfig(channels))
	if err != nil {
		return err
	}
	rng := tensor.NewRNG(seed)
	// 16384 steps ≈ 2.2 MB of float64 stream: comfortably past the L2 a
	// 1-core container gets, so the float64 path pays its full memory
	// bandwidth and the precision comparison is stable run to run instead
	// of hinging on cache-residency luck.
	series := tensor.New(16384, channels)
	sd := series.Data()
	for i := range sd {
		sd[i] = rng.NormFloat64()
	}
	windows := series.Dim(0)

	scoreStream := func(precision string) func(iters int) {
		return func(iters int) {
			if err := model.SetPrecision(precision); err != nil {
				panic(err)
			}
			for i := 0; i < iters; i++ {
				detect.ScoreSeriesBatched(model, series)
			}
		}
	}

	// The AR-LSTM baseline rides the small-product TransB fast path: its
	// per-step gate GEMMs are far below the packed-engine threshold, so
	// this case tracks the small-matrix kernels the VARADE cases never
	// exercise. A shorter stream keeps the recurrent cost in budget.
	lstm, err := arlstm.New(arlstm.EdgeConfig(channels))
	if err != nil {
		return err
	}
	lstmSeries := series.SliceRows(0, 4096)
	lstmWindows := lstmSeries.Dim(0)

	const mmN = 128
	x64 := tensor.RandNormal(tensor.NewRNG(1), 0, 1, mmN, mmN)
	y64 := tensor.RandNormal(tensor.NewRNG(2), 0, 1, mmN, mmN)
	dst64 := tensor.New(mmN, mmN)
	x32 := tensor.Convert[float32](x64)
	y32 := tensor.Convert[float32](y64)
	dst32 := tensor.NewOf[float32](mmN, mmN)

	suite := []benchCase{
		{"MatMul128", 0, func(n int) {
			for i := 0; i < n; i++ {
				tensor.MatMulInto(dst64, x64, y64)
			}
		}},
		{"MatMul128F32", 0, func(n int) {
			for i := 0; i < n; i++ {
				tensor.MatMulInto(dst32, x32, y32)
			}
		}},
		{"MatMulTransB128", 0, func(n int) {
			for i := 0; i < n; i++ {
				tensor.MatMulTransBInto(dst64, x64, y64)
			}
		}},
		{"MatMulTransB128F32", 0, func(n int) {
			for i := 0; i < n; i++ {
				tensor.MatMulTransBInto(dst32, x32, y32)
			}
		}},
		{"Figure3ScoreStream", windows, scoreStream(varade.PrecisionFloat64)},
		{"Figure3ScoreStreamF32", windows, scoreStream(varade.PrecisionFloat32)},
		{"Figure3ScoreStreamInt8", windows, scoreStream(varade.PrecisionInt8)},
		{"ARLSTMScoreStream", lstmWindows, func(n int) {
			for i := 0; i < n; i++ {
				detect.ScoreSeriesBatched(lstm, lstmSeries)
			}
		}},
	}

	results := measureSuite(suite)
	// One extra profiled run per streaming case attributes the measured
	// time to pipeline stages — after timing, so the stage-timer atomics
	// (negligible as they are) can't colour the headline numbers.
	for i, c := range suite {
		if c.windows > 0 {
			results[i].StageNsPerWindow = stageProfile(c.fn)
		}
	}

	// The serving benchmark runs as its own phase: the live fleet server
	// (per-group flusher tickers, 64 session goroutine trios) must not
	// steal cycles from the single-threaded numeric cases above.
	fleet, err := newFleetMixedBench(seed)
	if err != nil {
		return err
	}
	fleetResults := measureSuite([]benchCase{
		{"FleetServeMixed64", fleet.sessions * fleet.steps, fleet.run},
	})
	fleetResults[0].StageNsPerWindow = stageProfile(fleet.run)
	results = append(results, fleetResults...)
	fleet.close()

	// The routed lane: the identical mixed fleet through a varade-router
	// over two backends. Rendered by -diff/-trend for the sharding
	// trajectory; never gated (the relay hop's cost is host-sensitive).
	routed, err := newFleetRoutedBench(seed)
	if err != nil {
		return err
	}
	routedResults := measureSuite([]benchCase{
		{"FleetServeRouted64", routed.sessions * routed.steps, routed.run},
	})
	results = append(results, routedResults...)
	routed.close()

	// The bursty-admission lane: throughput is informational (the op
	// includes deliberate idle gaps); the numbers that matter are the
	// server-measured coalesce-latency percentiles against the 5ms SLO.
	bursty, err := newFleetBurstyBench(seed)
	if err != nil {
		return err
	}
	burstyResults := measureSuite([]benchCase{
		{"FleetServeBursty64", bursty.sessions * bursty.steps, bursty.run},
	})
	bm := bursty.srv.Metrics()
	burstyResults[0].P50CoalesceMs = bm.P50CoalesceMs
	burstyResults[0].P99CoalesceMs = bm.P99CoalesceMs
	results = append(results, burstyResults...)
	bursty.close()

	// The failover lane: the routed fleet again, but the backend serving
	// session 0 is force-killed at the half-way barrier and every
	// orphaned session rides the router's transparent hand-off to the
	// survivor. One-shot — a backend only dies once per fleet — so the
	// figures are a single survival sample rather than a min-of-rounds
	// estimate: windows/s counts scores actually received across the
	// kill, and the hand-off columns come from the router's own counters.
	fo, err := newFleetFailoverBench(seed)
	if err != nil {
		return err
	}
	foScores, foElapsed := fo.runFailover()
	foHandoffs, _, foP99 := fo.rt.HandoffStats()
	foRes := BenchResult{
		Name:         "FleetServeFailover64",
		NsPerOp:      float64(foElapsed.Nanoseconds()),
		Iterations:   1,
		Rounds:       1,
		Handoffs:     foHandoffs,
		HandoffP99Ms: float64(foP99) / 1e6,
	}
	if foElapsed > 0 {
		foRes.WindowsPerSec = float64(foScores) / foElapsed.Seconds()
	}
	results = append(results, foRes)
	fo.close()
	if foHandoffs < 1 {
		return fmt.Errorf("failover lane recorded %d hand-offs, want >= 1 — the kill missed every session", foHandoffs)
	}
	// Which micro-kernel family produced these numbers: cross-runner
	// comparisons are only meaningful on the same dispatch.
	fmt.Printf("gemm kernel: %s, qgemm kernel: %s\n", tensor.GemmKernelName(), tensor.QGemmKernelName())
	for _, res := range results {
		if res.WindowsPerSec > 0 {
			fmt.Printf("%-24s %12.0f ns/op %8d allocs/op %12.0f windows/s\n",
				res.Name, res.NsPerOp, res.AllocsPerOp, res.WindowsPerSec)
		} else {
			fmt.Printf("%-24s %12.0f ns/op %8d allocs/op\n", res.Name, res.NsPerOp, res.AllocsPerOp)
		}
		if res.P99CoalesceMs > 0 {
			fmt.Printf("  · %-20s %12.3f ms p50 %10.3f ms p99\n", "coalesce latency", res.P50CoalesceMs, res.P99CoalesceMs)
		}
		if res.Handoffs > 0 {
			fmt.Printf("  · %-20s %12d sessions %9.3f ms p99\n", "hand-off", res.Handoffs, res.HandoffP99Ms)
		}
		if len(res.StageNsPerWindow) > 0 {
			stages := make([]string, 0, len(res.StageNsPerWindow))
			for s := range res.StageNsPerWindow {
				stages = append(stages, s)
			}
			sort.Strings(stages)
			for _, s := range stages {
				fmt.Printf("  · %-20s %12.0f ns/window\n", s, res.StageNsPerWindow[s])
			}
		}
	}

	if jsonPath != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"gemm_kernel":  tensor.GemmKernelName(),
			"qgemm_kernel": tensor.QGemmKernelName(),
			"benchmarks":   results,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return nil
}
