// Command varade-bench regenerates every table and figure of the paper's
// evaluation (§4) on the simulated testbed:
//
//	varade-bench -exp table1            # channel schema (Table 1)
//	varade-bench -exp figure1           # VARADE architecture summary (Fig. 1)
//	varade-bench -exp table2            # full 6-detector × 2-board comparison
//	varade-bench -exp figure3           # Hz vs AUC scatter series (Fig. 3)
//	varade-bench -exp accuracy          # six-detector AUC table only
//	varade-bench -exp ablation-score    # variance vs residual scoring
//	varade-bench -exp ablation-augment  # disturbance augmentation on/off
//	varade-bench -exp ablation-kl       # KL-weight sweep
//	varade-bench -exp ablation-window   # window-size sweep
//	varade-bench -exp ablation-width    # feature-map width sweep
//
// The perf trajectory lives in machine-readable suite runs:
//
//	varade-bench -exp bench -json BENCH_pr5.json       # write the suite
//	varade-bench -diff BENCH_pr4.json BENCH_pr5.json   # fail on >10% windows/s regressions
//	varade-bench -trend BENCH_pr*.json                 # windows/s trajectory across baselines
//
// -scale paper uses the exact §3.1/§3.3 architectures for the inference-
// cost columns (slow on one core); -scale small uses the reduced configs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"varade"
	"varade/internal/core"
	"varade/internal/detect"
	"varade/internal/edge"
	"varade/internal/eval"
)

func main() {
	exp := flag.String("exp", "table2", "experiment: table1|figure1|table2|figure3|accuracy|bench|ablation-score|ablation-augment|ablation-kl|ablation-window|ablation-width")
	scaleFlag := flag.String("scale", "small", "architecture scale for timing: small|paper")
	seed := flag.Uint64("seed", 42, "experiment seed")
	jsonOut := flag.String("json", "", "with -exp bench: write machine-readable results to this path (e.g. BENCH_pr4.json)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment to this path")
	diffFlag := flag.Bool("diff", false, "compare two bench JSON files (varade-bench -diff old.json new.json) and fail on windows/s regressions")
	diffTol := flag.Float64("diff-tolerance", 0.10, "relative windows/s drop that fails -diff")
	trendFlag := flag.Bool("trend", false, "render the windows/s trajectory across 2+ bench JSON baselines (varade-bench -trend BENCH_pr3.json BENCH_pr4.json ...)")
	flag.Parse()

	if *trendFlag {
		args := flag.Args()
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "varade-bench: -trend needs at least two files: varade-bench -trend old.json ... new.json")
			os.Exit(2)
		}
		if err := runTrend(args); err != nil {
			fmt.Fprintln(os.Stderr, "varade-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *diffFlag {
		args := flag.Args()
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "varade-bench: -diff needs exactly two files: varade-bench -diff old.json new.json")
			os.Exit(2)
		}
		if err := runDiff(args[0], args[1], *diffTol); err != nil {
			fmt.Fprintln(os.Stderr, "varade-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "varade-bench:", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}

	scale := varade.ScaleSmall
	if *scaleFlag == "paper" {
		scale = varade.ScalePaper
	}

	var err error
	switch *exp {
	case "table1":
		err = table1()
	case "figure1":
		err = figure1(scale)
	case "table2":
		err = table2(scale, *seed)
	case "figure3":
		err = figure3(scale, *seed)
	case "accuracy":
		err = accuracy(*seed)
	case "bench":
		err = runBenchSuite(*jsonOut, *seed)
	case "ablation-score":
		err = ablationScore(*seed)
	case "ablation-augment":
		err = ablationAugment(*seed)
	case "ablation-kl":
		err = ablationKL(*seed)
	case "ablation-window":
		err = ablationWindow(*seed)
	case "ablation-width":
		err = ablationWidth(*seed)
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "varade-bench:", err)
		os.Exit(1)
	}
}

// table1 prints the 86-channel schema of the robot stream.
func table1() error {
	fmt.Println("Table 1: channel description of the simulated testbed stream")
	fmt.Printf("%-24s %-8s %s\n", "Channel name", "Unit", "Description")
	fmt.Println(strings.Repeat("-", 64))
	for _, ch := range varade.Channels() {
		fmt.Printf("%-24s %-8s %s\n", ch.Name, ch.Unit, ch.Description)
	}
	fmt.Printf("\n%d channels total\n", len(varade.Channels()))
	return nil
}

// figure1 prints the VARADE architecture layer table.
func figure1(scale varade.Scale) error {
	cfg := varade.PaperConfig(varade.NumChannels)
	if scale == varade.ScaleSmall {
		cfg = varade.EdgeConfig(varade.NumChannels)
	}
	m, err := varade.New(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Figure 1: VARADE architecture")
	m.Summary(os.Stdout)
	return nil
}

// table2 regenerates the full comparison of Table 2.
func table2(scale varade.Scale, seed uint64) error {
	fmt.Println("Table 2: detectors on the two simulated edge boards")
	fmt.Println("(accuracy from the small-scale training run; Hz/power from measured")
	fmt.Println(" Go inference cost mapped through the board profiles — see DESIGN.md)")
	idle, rows, err := varade.Table2(scale, seed)
	if err != nil {
		return err
	}
	for i := range idle {
		fmt.Printf("\n=== %s ===\n", idle[i].Board)
		edge.WriteTable(os.Stdout, idle[i], rows[i])
	}
	return nil
}

// figure3 emits the (Hz, AUC, power) scatter series of Figure 3.
func figure3(scale varade.Scale, seed uint64) error {
	fmt.Println("Figure 3: inference frequency vs accuracy (marker size = power)")
	_, rows, err := varade.Table2(scale, seed)
	if err != nil {
		return err
	}
	var all []varade.BoardReport
	for _, r := range rows {
		all = append(all, r...)
	}
	edge.WriteScatter(os.Stdout, all)
	return nil
}

// accuracy prints the six-detector AUC comparison.
func accuracy(seed uint64) error {
	ds, sub, err := accuracyDataset(seed)
	if err != nil {
		return err
	}
	_ = ds
	dets, err := varade.BuildDetectors(len(varade.InterestingChannels()), varade.ScaleSmall)
	if err != nil {
		return err
	}
	acc, err := varade.RunAccuracy(dets, sub)
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %9s %9s %9s\n", "Model", "AUC", "AUC(adj)", "fit s")
	fmt.Println(strings.Repeat("-", 48))
	for _, a := range acc {
		fmt.Printf("%-18s %9.3f %9.3f %9.1f\n", a.Name, a.AUCROC, a.AUCAdjusted, a.FitSec)
	}
	return nil
}

func accuracyDataset(seed uint64) (*varade.Dataset, *varade.Dataset, error) {
	cfg := varade.SmallDatasetConfig()
	cfg.Sim.Seed = seed
	ds, err := varade.GenerateDataset(cfg)
	if err != nil {
		return nil, nil, err
	}
	idx := varade.InterestingChannels()
	sub := &varade.Dataset{
		Train:  varade.SelectChannels(ds.Train, idx),
		Test:   varade.SelectChannels(ds.Test, idx),
		Labels: ds.Labels,
		Events: ds.Events,
		Rate:   ds.Rate,
	}
	return ds, sub, nil
}

// ablationScore compares the paper's variance score against the
// conventional residual score on the same trained network (§3.1's
// motivating observation).
func ablationScore(seed uint64) error {
	_, sub, err := accuracyDataset(seed)
	if err != nil {
		return err
	}
	c := sub.Train.Dim(1)
	m, err := core.New(core.EdgeConfig(c))
	if err != nil {
		return err
	}
	if err := m.Fit(sub.Train); err != nil {
		return err
	}
	vs := detect.ScoreSeriesBatched(m, sub.Test)
	rs := detect.ScoreSeriesBatched(&core.ResidualScorer{Model: m}, sub.Test)

	fmt.Println("Ablation: anomaly score definition on the same trained VARADE net")
	fmt.Printf("%-22s %9s %9s\n", "Score", "AUC", "AUC(adj)")
	fmt.Println(strings.Repeat("-", 42))
	fmt.Printf("%-22s %9.3f %9.3f\n", "predicted variance", eval.AUCROC(vs, sub.Labels), eval.AUCROCAdjusted(vs, sub.Labels))
	fmt.Printf("%-22s %9.3f %9.3f\n", "residual ‖y−μ‖", eval.AUCROC(rs, sub.Labels), eval.AUCROCAdjusted(rs, sub.Labels))
	return nil
}

// ablationAugment isolates the disturbance augmentation of
// core.TrainConfig (DESIGN.md §1b item 2): the same architecture trained
// with and without suffix disturbances, scored by its variance.
func ablationAugment(seed uint64) error {
	_, sub, err := accuracyDataset(seed)
	if err != nil {
		return err
	}
	c := sub.Train.Dim(1)
	fmt.Println("Ablation: disturbance augmentation (variance score)")
	fmt.Printf("%-28s %9s %9s\n", "Training", "AUC", "AUC(adj)")
	fmt.Println(strings.Repeat("-", 48))
	for _, p := range []struct {
		name string
		prob float64
	}{
		{"plain ELBO (no augmentation)", 0},
		{"augmented (prob 0.25)", 0.25},
		{"augmented (prob 0.5)", 0.5},
	} {
		m, err := core.New(core.EdgeConfig(c))
		if err != nil {
			return err
		}
		tc := core.DefaultTrainConfig()
		tc.AugmentProb = p.prob
		if err := m.FitWindows(sub.Train, tc); err != nil {
			return err
		}
		s := detect.ScoreSeriesBatched(m, sub.Test)
		fmt.Printf("%-28s %9.3f %9.3f\n", p.name,
			eval.AUCROC(s, sub.Labels), eval.AUCROCAdjusted(s, sub.Labels))
	}
	return nil
}

// ablationKL sweeps the KL weight λ of Eq. 7.
func ablationKL(seed uint64) error {
	_, sub, err := accuracyDataset(seed)
	if err != nil {
		return err
	}
	c := sub.Train.Dim(1)
	fmt.Println("Ablation: KL weight λ (Eq. 7)")
	fmt.Printf("%8s %9s %9s\n", "λ", "AUC", "AUC(adj)")
	fmt.Println(strings.Repeat("-", 28))
	for _, kl := range []float64{0, 0.01, 0.05, 0.1, 0.3, 1.0} {
		cfg := core.EdgeConfig(c)
		cfg.KLWeight = kl
		m, err := core.New(cfg)
		if err != nil {
			return err
		}
		if err := m.Fit(sub.Train); err != nil {
			return err
		}
		s := detect.ScoreSeriesBatched(m, sub.Test)
		fmt.Printf("%8.2f %9.3f %9.3f\n", kl, eval.AUCROC(s, sub.Labels), eval.AUCROCAdjusted(s, sub.Labels))
	}
	return nil
}

// ablationWindow sweeps the context length T (and with it the number of
// conv layers), reporting accuracy and measured inference cost — the §3.1
// compactness/latency trade-off.
func ablationWindow(seed uint64) error {
	_, sub, err := accuracyDataset(seed)
	if err != nil {
		return err
	}
	c := sub.Train.Dim(1)
	fmt.Println("Ablation: window size T (layers = log2 T − 1)")
	fmt.Printf("%6s %7s %10s %9s %9s %12s\n", "T", "layers", "params", "AUC", "AUC(adj)", "µs/inf")
	fmt.Println(strings.Repeat("-", 60))
	for _, w := range []int{8, 16, 32, 64, 128} {
		cfg := core.EdgeConfig(c)
		cfg.Window = w
		m, err := core.New(cfg)
		if err != nil {
			return err
		}
		if err := m.Fit(sub.Train); err != nil {
			return err
		}
		s := detect.ScoreSeriesBatched(m, sub.Test)
		sec := edge.MeasureSecPerInf(m, sub.Test, 50)
		fmt.Printf("%6d %7d %10d %9.3f %9.3f %12.0f\n",
			w, cfg.NumLayers(), m.NumParams(),
			eval.AUCROC(s, sub.Labels), eval.AUCROCAdjusted(s, sub.Labels), sec*1e6)
	}
	return nil
}

// ablationWidth sweeps the feature-map width.
func ablationWidth(seed uint64) error {
	_, sub, err := accuracyDataset(seed)
	if err != nil {
		return err
	}
	c := sub.Train.Dim(1)
	fmt.Println("Ablation: base feature maps (doubled every 2 layers)")
	fmt.Printf("%6s %10s %9s %9s %12s\n", "maps", "params", "AUC", "AUC(adj)", "µs/inf")
	fmt.Println(strings.Repeat("-", 52))
	for _, maps := range []int{4, 8, 16, 32} {
		cfg := core.EdgeConfig(c)
		cfg.BaseMaps = maps
		m, err := core.New(cfg)
		if err != nil {
			return err
		}
		if err := m.Fit(sub.Train); err != nil {
			return err
		}
		s := detect.ScoreSeriesBatched(m, sub.Test)
		sec := edge.MeasureSecPerInf(m, sub.Test, 50)
		fmt.Printf("%6d %10d %9.3f %9.3f %12.0f\n",
			maps, m.NumParams(),
			eval.AUCROC(s, sub.Labels), eval.AUCROCAdjusted(s, sub.Labels), sec*1e6)
	}
	return nil
}
