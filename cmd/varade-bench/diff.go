package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// The BENCH trajectory diff: `varade-bench -diff old.json new.json`
// compares two machine-readable suite runs (the committed BENCH_prN.json
// against a fresh one) and fails — exit status 1 via main — when any
// benchmark present in both regressed its windows/s metric by more than
// the tolerance. Non-streaming benchmarks (windows/s absent) are
// reported on ns/op but only the throughput metrics gate, matching the
// ROADMAP's "flag >10% regressions on the windows/s metrics".

type benchFile struct {
	// GemmKernel records which micro-kernel family produced the numbers
	// ("avx2", "neon", "generic"); absent in pre-PR-5 baselines.
	GemmKernel string `json:"gemm_kernel,omitempty"`
	// QGemmKernel is the int8 GEMM family; absent in pre-PR-6 baselines.
	QGemmKernel string        `json:"qgemm_kernel,omitempty"`
	Benchmarks  []BenchResult `json:"benchmarks"`
}

// kernelLabel renders a file's kernel families for the diff/trend
// headers, spelling out baselines that predate the recording.
func kernelLabel(f benchFile) string {
	g, q := f.GemmKernel, f.QGemmKernel
	if g == "" {
		g = "unrecorded"
	}
	if q == "" {
		q = "unrecorded"
	}
	return fmt.Sprintf("%s (qgemm %s)", g, q)
}

func readBenchFileRaw(path string) (benchFile, error) {
	var f benchFile
	blob, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(blob, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// readBenchFile loads a baseline once, returning its results by name,
// their file order, and the recorded kernel families ("unrecorded" for
// baselines that predate the field).
func readBenchFile(path string) (map[string]BenchResult, []string, string, error) {
	f, err := readBenchFileRaw(path)
	if err != nil {
		return nil, nil, "", err
	}
	out := make(map[string]BenchResult, len(f.Benchmarks))
	order := make([]string, 0, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		out[b.Name] = b
		order = append(order, b.Name)
	}
	return out, order, kernelLabel(f), nil
}

// runDiff prints the old→new movement per benchmark and returns an error
// naming every windows/s regression beyond tolerance (0.10 = 10%).
func runDiff(oldPath, newPath string, tolerance float64) error {
	oldRes, oldOrder, oldKernel, err := readBenchFile(oldPath)
	if err != nil {
		return err
	}
	newRes, newOrder, newKernel, err := readBenchFile(newPath)
	if err != nil {
		return err
	}

	fmt.Printf("bench diff: %s → %s (gate: windows/s regression > %.0f%%)\n", oldPath, newPath, tolerance*100)
	// Same-machine comparisons are only meaningful on the same kernel
	// family; spell both out so cross-runner numbers are interpretable.
	fmt.Printf("gemm kernel: %s → %s\n", oldKernel, newKernel)
	fmt.Printf("%-24s %14s %14s %9s  %s\n", "benchmark", "old", "new", "Δ", "metric")
	fmt.Println(strings.Repeat("-", 72))

	var regressions []string
	for _, name := range oldOrder {
		o := oldRes[name]
		n, ok := newRes[name]
		if !ok {
			// Dropped benchmarks are loud: a silent disappearance would
			// read as "no regression" while hiding the metric entirely.
			fmt.Printf("%-24s %14s %14s %9s  MISSING from %s\n", name, fmtMetric(o), "-", "-", newPath)
			regressions = append(regressions, fmt.Sprintf("%s: missing from %s", name, newPath))
			continue
		}
		if o.WindowsPerSec > 0 {
			if n.WindowsPerSec <= 0 {
				// A throughput metric that vanishes while its name
				// survives is a gated failure, not a downgrade to the
				// informational ns/op lane.
				fmt.Printf("%-24s %14.0f %14s %9s  windows/s metric LOST\n", name, o.WindowsPerSec, "-", "-")
				regressions = append(regressions, fmt.Sprintf("%s: windows/s metric missing from %s", name, newPath))
				continue
			}
			delta := n.WindowsPerSec/o.WindowsPerSec - 1
			fmt.Printf("%-24s %14.0f %14.0f %+8.1f%%  windows/s\n", name, o.WindowsPerSec, n.WindowsPerSec, delta*100)
			if delta < -tolerance {
				regressions = append(regressions,
					fmt.Sprintf("%s: %.0f → %.0f windows/s (%.1f%%)", name, o.WindowsPerSec, n.WindowsPerSec, delta*100))
			}
			printStageDiff(o, n)
			printLatencyDiff(o, n)
			printHandoffDiff(o, n)
			continue
		}
		// Informational only: ns/op is noisy on shared hosts and does not gate.
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = n.NsPerOp/o.NsPerOp - 1
		}
		fmt.Printf("%-24s %14.0f %14.0f %+8.1f%%  ns/op (not gated)\n", name, o.NsPerOp, n.NsPerOp, delta*100)
	}
	for _, name := range newOrder {
		if _, ok := oldRes[name]; !ok {
			fmt.Printf("%-24s %14s %14s %9s  new benchmark\n", name, "-", fmtMetric(newRes[name]), "-")
		}
	}

	if len(regressions) > 0 {
		return fmt.Errorf("bench diff: %d windows/s regression(s) beyond %.0f%%:\n  %s",
			len(regressions), tolerance*100, strings.Join(regressions, "\n  "))
	}
	fmt.Println("\nno windows/s regressions beyond tolerance")
	return nil
}

// printStageDiff renders the per-stage ns/window movement under a
// benchmark's headline row. Stage data is informational, never gated:
// it localises a windows/s regression to quantize/pack/gemm/requant but
// baselines that predate the field (or stages new to this run) simply
// show a dash — missing-in-old is not a failure.
func printStageDiff(o, n BenchResult) {
	if len(o.StageNsPerWindow) == 0 && len(n.StageNsPerWindow) == 0 {
		return
	}
	union := make(map[string]bool, len(o.StageNsPerWindow)+len(n.StageNsPerWindow))
	for s := range o.StageNsPerWindow {
		union[s] = true
	}
	for s := range n.StageNsPerWindow {
		union[s] = true
	}
	stages := make([]string, 0, len(union))
	for s := range union {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		ov, oOK := o.StageNsPerWindow[s]
		nv, nOK := n.StageNsPerWindow[s]
		switch {
		case oOK && nOK && ov > 0:
			fmt.Printf("  · %-21s %14.0f %14.0f %+8.1f%%  stage ns/window (not gated)\n", s, ov, nv, (nv/ov-1)*100)
		case nOK:
			fmt.Printf("  · %-21s %14s %14.0f %9s  stage ns/window (no baseline)\n", s, "-", nv, "-")
		default:
			fmt.Printf("  · %-21s %14.0f %14s %9s  stage ns/window (not in new run)\n", s, ov, "-", "-")
		}
	}
}

// printLatencyDiff renders the coalesce-latency percentile movement for
// bursty serving lanes. Informational, never gated: wall-clock latency
// under deliberate admission gaps is too host-sensitive for a hard
// threshold, but the p50/p99 trajectory against the SLO is worth seeing.
func printLatencyDiff(o, n BenchResult) {
	if o.P99CoalesceMs <= 0 && n.P99CoalesceMs <= 0 {
		return
	}
	row := func(label string, ov, nv float64) {
		switch {
		case ov > 0 && nv > 0:
			fmt.Printf("  · %-21s %14.3f %14.3f %+8.1f%%  %s coalesce ms (not gated)\n", label, ov, nv, (nv/ov-1)*100, label)
		case nv > 0:
			fmt.Printf("  · %-21s %14s %14.3f %9s  %s coalesce ms (no baseline)\n", label, "-", nv, "-", label)
		default:
			fmt.Printf("  · %-21s %14.3f %14s %9s  %s coalesce ms (not in new run)\n", label, ov, "-", "-", label)
		}
	}
	row("p50", o.P50CoalesceMs, n.P50CoalesceMs)
	row("p99", o.P99CoalesceMs, n.P99CoalesceMs)
}

// printHandoffDiff renders the failover lane's hand-off movement: how
// many sessions the router re-placed after the mid-run kill and the
// detection-to-warmed p99. Informational, never gated — hand-off
// latency is dominated by dial and scheduler costs that vary across
// hosts — but the trajectory (and that the count stays non-zero, i.e.
// the lane really killed a loaded backend) is worth seeing.
func printHandoffDiff(o, n BenchResult) {
	if o.Handoffs <= 0 && n.Handoffs <= 0 {
		return
	}
	switch {
	case o.Handoffs > 0 && n.Handoffs > 0:
		fmt.Printf("  · %-21s %14d %14d %9s  hand-offs (not gated)\n", "hand-offs", o.Handoffs, n.Handoffs, "-")
	case n.Handoffs > 0:
		fmt.Printf("  · %-21s %14s %14d %9s  hand-offs (no baseline)\n", "hand-offs", "-", n.Handoffs, "-")
	default:
		fmt.Printf("  · %-21s %14d %14s %9s  hand-offs (not in new run)\n", "hand-offs", o.Handoffs, "-", "-")
	}
	switch {
	case o.HandoffP99Ms > 0 && n.HandoffP99Ms > 0:
		fmt.Printf("  · %-21s %14.3f %14.3f %+8.1f%%  p99 hand-off ms (not gated)\n", "p99 hand-off", o.HandoffP99Ms, n.HandoffP99Ms, (n.HandoffP99Ms/o.HandoffP99Ms-1)*100)
	case n.HandoffP99Ms > 0:
		fmt.Printf("  · %-21s %14s %14.3f %9s  p99 hand-off ms (no baseline)\n", "p99 hand-off", "-", n.HandoffP99Ms, "-")
	case o.HandoffP99Ms > 0:
		fmt.Printf("  · %-21s %14.3f %14s %9s  p99 hand-off ms (not in new run)\n", "p99 hand-off", o.HandoffP99Ms, "-", "-")
	}
}

func fmtMetric(b BenchResult) string {
	if b.WindowsPerSec > 0 {
		return fmt.Sprintf("%.0f w/s", b.WindowsPerSec)
	}
	return fmt.Sprintf("%.0f ns/op", b.NsPerOp)
}
