package main

import (
	"fmt"
	"path/filepath"
	"strings"
)

// The BENCH trajectory trend: `varade-bench -trend BENCH_pr3.json
// BENCH_pr4.json BENCH_pr5.json ...` renders the windows/s trajectory of
// every throughput benchmark across all committed baselines, with the
// step-to-step and cumulative deltas spelled out. The pairwise -diff
// gate only sees 10% at a time; the trend makes slow bleed visible
// before it accumulates under that threshold.

// runTrend prints the trajectory table across the given files (in the
// order supplied, oldest first). It never fails on regressions — it is a
// report, not a gate — but does fail on unreadable files.
func runTrend(paths []string) error {
	type column struct {
		label  string
		kernel string
		res    map[string]BenchResult
		order  []string
	}
	cols := make([]column, 0, len(paths))
	for _, p := range paths {
		f, err := readBenchFileRaw(p)
		if err != nil {
			return err
		}
		res := make(map[string]BenchResult, len(f.Benchmarks))
		order := make([]string, 0, len(f.Benchmarks))
		for _, b := range f.Benchmarks {
			res[b.Name] = b
			order = append(order, b.Name)
		}
		label := strings.TrimSuffix(filepath.Base(p), ".json")
		cols = append(cols, column{label: label, kernel: kernelLabel(f), res: res, order: order})
	}

	// Union of benchmark names, first-appearance order.
	var names []string
	seen := make(map[string]bool)
	for _, c := range cols {
		for _, n := range c.order {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}

	fmt.Println("windows/s trajectory (oldest → newest; Δ vs previous baseline, Σ vs first)")
	for _, c := range cols {
		fmt.Printf("  %-20s gemm kernel: %s\n", c.label, c.kernel)
	}
	fmt.Println()

	head := fmt.Sprintf("%-26s", "benchmark")
	for i, c := range cols {
		if i == 0 {
			head += fmt.Sprintf(" %12s", c.label)
		} else {
			head += fmt.Sprintf(" %12s %7s", c.label, "Δ")
		}
	}
	head += fmt.Sprintf(" %8s", "Σ")
	fmt.Println(head)
	fmt.Println(strings.Repeat("-", len(head)))

	skipped := 0
	for _, name := range names {
		vals := make([]float64, len(cols)) // 0 = absent or no windows/s
		any := false
		for i, c := range cols {
			if b, ok := c.res[name]; ok && b.WindowsPerSec > 0 {
				vals[i] = b.WindowsPerSec
				any = true
			}
		}
		if !any {
			skipped++ // ns/op-only benchmarks have no throughput trajectory
			continue
		}
		row := fmt.Sprintf("%-26s", name)
		prev, first := 0.0, 0.0
		present := 0
		for i, v := range vals {
			cell := "-"
			if v > 0 {
				cell = fmt.Sprintf("%.0f", v)
			}
			if i == 0 {
				row += fmt.Sprintf(" %12s", cell)
			} else {
				row += fmt.Sprintf(" %12s %7s", cell, pctDelta(prev, v))
			}
			if v > 0 {
				if first == 0 {
					first = v
				}
				prev = v
				present++
			}
		}
		total := "-"
		if present >= 2 {
			total = pctDelta(first, prev)
		}
		row += fmt.Sprintf(" %8s", total)
		fmt.Println(row)
	}
	if skipped > 0 {
		fmt.Printf("\n(%d benchmark(s) without a windows/s metric omitted; see -diff for ns/op)\n", skipped)
	}
	return nil
}

// pctDelta formats the relative movement old → new, "-" when either
// side is missing.
func pctDelta(old, new float64) string {
	if old <= 0 || new <= 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", (new/old-1)*100)
}
