// Command varade-train generates a training run of the simulated testbed
// (or reads one from a CSV file), trains a VARADE model and saves the
// weights plus the normalisation statistics needed at inference time.
//
//	varade-train -out model.vnn                     # simulated stream
//	varade-train -in stream.csv -out model.vnn      # your own data
//	varade-train -out model.vmf -precision float32  # float32 inference container
//	varade-train -out model.vmf -quantize int8      # post-training int8 quantization
//
// The CSV input is one sample per line, comma-separated floats, already
// normalised; the channel count is inferred from the first line.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"varade"
	"varade/internal/stream"
	"varade/internal/tensor"
)

func main() {
	in := flag.String("in", "", "CSV stream to train on (default: simulate the robot testbed)")
	out := flag.String("out", "varade-model.vnn", "weights output path")
	window := flag.Int("window", 32, "context window T (power of two)")
	maps := flag.Int("maps", 16, "base feature maps")
	kl := flag.Float64("kl", 0.1, "KL weight λ")
	epochs := flag.Int("epochs", 20, "training epochs")
	lr := flag.Float64("lr", 1e-3, "Adam learning rate")
	seconds := flag.Float64("seconds", 600, "simulated training duration (when -in is empty)")
	seed := flag.Uint64("seed", 42, "seed for simulation and training")
	subset := flag.Bool("subset", true, "use the compact channel subset for simulated data")
	precision := flag.String("precision", "float64", "inference precision saved with the model: float64|float32|int8")
	quantize := flag.String("quantize", "", "post-training quantization; 'int8' is shorthand for -precision int8")
	flag.Parse()

	prec := *precision
	switch *quantize {
	case "":
	case "int8":
		if prec != "" && prec != varade.PrecisionFloat64 && prec != varade.PrecisionInt8 {
			log.Fatalf("-quantize int8 conflicts with -precision %s", prec)
		}
		prec = varade.PrecisionInt8
	default:
		log.Fatalf("unknown -quantize %q (only int8 is supported)", *quantize)
	}

	series, test, labels, err := loadOrSimulate(*in, *seconds, *seed, *subset)
	if err != nil {
		log.Fatal(err)
	}
	cfg := varade.Config{
		Window:   *window,
		Channels: series.Dim(1),
		BaseMaps: *maps,
		KLWeight: *kl,
		Seed:     *seed,
	}
	model, err := varade.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tc := varade.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.LR = *lr
	tc.Logf = func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	fmt.Printf("VARADE T=%d C=%d maps=%d λ=%g — %d parameters, %d training samples\n",
		cfg.Window, cfg.Channels, cfg.BaseMaps, cfg.KLWeight, model.NumParams(), series.Dim(0))
	if err := model.FitWindows(series, tc); err != nil {
		log.Fatal(err)
	}
	// Training always runs in float64; the chosen precision applies to the
	// saved model's inference path (float32 weights, or post-training
	// per-channel int8 quantization).
	if err := model.SetPrecision(prec); err != nil {
		log.Fatal(err)
	}
	if prec == varade.PrecisionInt8 {
		// Calibrate the activation scales over the tail of the training
		// stream so the saved container carries them (a model saved
		// uncalibrated would re-calibrate on its first served batch), and
		// report what the quantizer saw.
		reportCalibration(model, series, test, labels)
	}
	if err := model.Save(*out); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %s weights to %s (%d bytes, %d B of model weights at serving precision)\n",
		model.Precision(), *out, info.Size(), model.WeightBytes())
}

// loadOrSimulate returns the training series plus, for simulated runs,
// the labelled test stream (nil for CSV input — user data carries no
// ground truth, so the calibration report skips the AUC comparison).
func loadOrSimulate(path string, seconds float64, seed uint64, subset bool) (series, test *varade.Tensor, labels []bool, err error) {
	if path == "" {
		cfg := varade.SmallDatasetConfig()
		cfg.Sim.Seed = seed
		cfg.TrainSeconds = seconds
		cfg.TestSeconds = 30 // must fit the injected collision
		cfg.Collisions = 1
		ds, err := varade.GenerateDataset(cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		if subset {
			idx := varade.InterestingChannels()
			return varade.SelectChannels(ds.Train, idx),
				varade.SelectChannels(ds.Test, idx), ds.Labels, nil
		}
		return ds.Train, ds.Test, ds.Labels, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	var rows [][]float64
	err = stream.ReadSamples(f, 0, func(sample []float64) bool {
		rows = append(rows, sample)
		return true
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if len(rows) == 0 {
		return nil, nil, nil, fmt.Errorf("no samples in %s", path)
	}
	c := len(rows[0])
	t := tensor.New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			return nil, nil, nil, fmt.Errorf("row %d has %d fields, want %d", i, len(r), c)
		}
		copy(t.Row(i).Data(), r)
	}
	return t, nil, nil, nil
}

// calibTailSamples bounds the calibration slice: enough windows to see
// representative activation ranges, small enough to stay instant.
const calibTailSamples = 2048

// reportCalibration scores the tail of the training stream at int8 —
// which latches the activation scales the container will carry — then
// prints the per-stage calibration report and, when a labelled test
// stream is available, the int8-vs-float64 AUC delta.
func reportCalibration(model *varade.Model, series, test *varade.Tensor, labels []bool) {
	calib := series
	if n := series.Dim(0); n > calibTailSamples {
		calib = series.SliceRows(n-calibTailSamples, n)
	}
	varade.ScoreSeriesBatched(model, calib)
	fmt.Printf("int8 activation calibration (%d-sample tail of the training stream):\n", calib.Dim(0))
	fmt.Printf("  %-10s %12s %12s %11s %5s %9s\n", "stage", "range lo", "range hi", "scale", "zero", "clipped")
	for _, s := range model.CalibrationStats() {
		fmt.Printf("  %-10s %12.5f %12.5f %11.7f %5d %8.3f%%\n",
			s.Label, s.Lo, s.Hi, s.Scale, s.Zero, s.ClippedPct)
	}
	if test == nil {
		fmt.Println("  no labelled test stream: skipping the int8-vs-float64 AUC check")
		return
	}
	int8Scores := varade.ScoreSeriesBatched(model, test)
	aucInt8 := varade.AUCROC(int8Scores, labels)
	// SetPrecision keeps the quantization and calibration state, so the
	// round trip through float64 leaves the saved int8 container intact.
	if err := model.SetPrecision(varade.PrecisionFloat64); err != nil {
		log.Fatal(err)
	}
	aucF64 := varade.AUCROC(varade.ScoreSeriesBatched(model, test), labels)
	if err := model.SetPrecision(varade.PrecisionInt8); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  test AUC-ROC: int8 %.4f, float64 %.4f (delta %+.4f)\n",
		aucInt8, aucF64, aucInt8-aucF64)
}
