// Collisions: the full robotic case study of §4 in miniature — generate
// the 86-channel stream, train VARADE, locate every collision with a
// threshold calibrated on training scores, and print a per-event report.
//
//	go run ./examples/collisions
package main

import (
	"fmt"
	"log"
	"strings"

	"varade"
)

func main() {
	cfg := varade.SmallDatasetConfig()
	cfg.TrainSeconds, cfg.TestSeconds, cfg.Collisions = 400, 200, 15
	ds, err := varade.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	idx := varade.InterestingChannels()
	train := varade.SelectChannels(ds.Train, idx)
	test := varade.SelectChannels(ds.Test, idx)

	model, err := varade.New(varade.EdgeConfig(len(idx)))
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Fit(train); err != nil {
		log.Fatal(err)
	}

	// Calibrate an alert threshold on the anomaly-free training stream.
	// The variance score has a wide normal operating range (it tracks the
	// arm's motion state), so a deployment picks the quantile that trades
	// sensitivity against false alarms; 0.90 favours sensitivity.
	trainScores := varade.ScoreSeriesBatched(model, train)
	thr := quantile(trainScores, 0.90)
	fmt.Printf("alert threshold: %.4f (90th percentile of training scores)\n\n", thr)

	scores := varade.ScoreSeriesBatched(model, test)
	fmt.Printf("%-8s %-10s %-10s %-9s %s\n", "event", "start s", "dur s", "peak", "detected")
	fmt.Println(strings.Repeat("-", 52))
	detected := 0
	for i, e := range ds.Events {
		peak := 0.0
		for k := e.Start; k < e.End; k++ {
			if scores[k] > peak {
				peak = scores[k]
			}
		}
		hit := peak > thr
		if hit {
			detected++
		}
		fmt.Printf("%-8d %-10.1f %-10.1f %-9.4f %v\n",
			i+1, float64(e.Start)/ds.Rate, float64(e.End-e.Start)/ds.Rate, peak, hit)
	}
	fp := 0
	for i, s := range scores {
		if s > thr && !ds.Labels[i] {
			fp++
		}
	}
	fmt.Printf("\ndetected %d/%d collisions; %d false-positive samples (%.2f%%)\n",
		detected, len(ds.Events), fp, 100*float64(fp)/float64(len(scores)))
	fmt.Printf("AUC-ROC %.3f\n", varade.AUCROC(scores, ds.Labels))
}

func quantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort keeps the example dependency-free
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[int(q*float64(len(s)-1))]
}
