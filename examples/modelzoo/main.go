// Modelzoo: run all six detectors of the paper's comparison (§3.3) on one
// dataset and print the accuracy table plus measured inference cost —
// the software half of Table 2.
//
//	go run ./examples/modelzoo
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"varade"
)

func main() {
	cfg := varade.SmallDatasetConfig()
	ds, err := varade.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	idx := varade.InterestingChannels()
	sub := &varade.Dataset{
		Train:  varade.SelectChannels(ds.Train, idx),
		Test:   varade.SelectChannels(ds.Test, idx),
		Labels: ds.Labels,
		Events: ds.Events,
		Rate:   ds.Rate,
	}

	dets, err := varade.BuildDetectors(len(idx), varade.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s %8s %9s %9s %11s\n", "Model", "AUC", "AUC(adj)", "fit s", "µs/infer")
	fmt.Println(strings.Repeat("-", 60))
	for _, nd := range dets {
		start := time.Now()
		if err := nd.Detector.Fit(sub.Train); err != nil {
			log.Fatal(err)
		}
		fitSec := time.Since(start).Seconds()
		scores := varade.ScoreSeriesBatched(nd.Detector, sub.Test)

		// Time inference on real windows.
		w := nd.Detector.WindowSize()
		reps := 0
		start = time.Now()
		for i := w; i < sub.Test.Dim(0) && reps < 200; i += w {
			nd.Detector.Score(sub.Test.SliceRows(i-w, i))
			reps++
		}
		usPerInf := time.Since(start).Seconds() / float64(reps) * 1e6

		fmt.Printf("%-18s %8.3f %9.3f %9.1f %11.0f\n",
			nd.Detector.Name(),
			varade.AUCROC(scores, sub.Labels),
			aucAdjusted(scores, sub.Labels),
			fitSec, usPerInf)
	}
}

// aucAdjusted applies the point-adjust protocol: each event is represented
// by its best score.
func aucAdjusted(scores []float64, labels []bool) float64 {
	adj := append([]float64(nil), scores...)
	start := -1
	for i := 0; i <= len(labels); i++ {
		inEvent := i < len(labels) && labels[i]
		switch {
		case inEvent && start < 0:
			start = i
		case !inEvent && start >= 0:
			best := adj[start]
			for k := start; k < i; k++ {
				if scores[k] > best {
					best = scores[k]
				}
			}
			for k := start; k < i; k++ {
				adj[k] = best
			}
			start = -1
		}
	}
	return varade.AUCROC(adj, labels)
}
