// Quickstart: train VARADE on the simulated robot stream and score the
// collision test run — the smallest end-to-end use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"varade"
)

func main() {
	// 1. Generate a small experiment: a normal training run and a test run
	//    with injected collisions, both normalised to [-1, 1].
	cfg := varade.SmallDatasetConfig()
	cfg.TrainSeconds, cfg.TestSeconds, cfg.Collisions = 300, 150, 20
	ds, err := varade.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Work on the compact channel subset so training takes seconds.
	idx := varade.InterestingChannels()
	train := varade.SelectChannels(ds.Train, idx)
	test := varade.SelectChannels(ds.Test, idx)

	// 2. Build and train a VARADE model.
	model, err := varade.New(varade.EdgeConfig(len(idx)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training VARADE (%d parameters) on %d samples…\n",
		model.NumParams(), train.Dim(0))
	if err := model.Fit(train); err != nil {
		log.Fatal(err)
	}

	// 3. Score the test stream: the predicted variance is the anomaly
	//    score (§3.2 of the paper).
	scores := varade.ScoreSeriesBatched(model, test)
	auc := varade.AUCROC(scores, ds.Labels)
	f1, thr := varade.BestF1(scores, ds.Labels)
	fmt.Printf("AUC-ROC          %.3f\n", auc)
	fmt.Printf("best F1          %.3f at threshold %.4f\n", f1, thr)
	fmt.Printf("event recall     %.0f%% of %d collisions\n",
		100*varade.EventRecall(scores, ds.Labels, thr), len(ds.Events))
}
