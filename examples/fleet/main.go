// Fleet: the production serving story end to end — train one VARADE
// detector, register it ONCE as a float64 entry, start the fleet server,
// and drive N simulated robots against it concurrently. Each robot is an
// independent plant (its own noise realisation and its own collisions)
// streaming over the binary fleet framing; the server coalesces ready
// windows across all sessions into batched forward passes and streams
// scores back. The run ends with the server's metrics snapshot, the
// per-precision serving groups, and the edge-board fleet projection.
//
// By default the fleet is heterogeneous, the paper's Table 2 premise: a
// third of the robots negotiate float64, a third float32, a third int8
// (protocol v2, SessionCaps in the Hello frame), and the server derives
// the reduced-precision serving groups from the single float64 registry
// entry on first demand.
//
// With -backends N (N ≥ 2) the example becomes the sharded serving
// topology: N fleet servers over the same registry entry behind one
// varade-router, backends registered over the live announcement plane,
// every robot dialing the router. Placement consistent-hashes on
// model@version:precision, so each precision's sessions co-batch on one
// backend, and the router's control endpoint serves the aggregated
// fleet exposition. Sessions placed this way also survive their
// backend: if a backend dies or drains mid-stream the router hands the
// session off to a survivor with replay-ring warmup and the robot never
// notices (see README "Fault tolerance"; TestRouterHandoffUnderChaos
// and BenchmarkFleetServeFailover64 exercise the kill live).
//
//	go run ./examples/fleet                        # 8 robots, mixed precisions
//	go run ./examples/fleet -devices 64            # the acceptance-scale fleet
//	go run ./examples/fleet -precision float32     # homogeneous fleet
//	go run ./examples/fleet -backends 2            # sharded: router + 2 servers
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"varade"
	"varade/internal/edge"
	"varade/internal/eval"
	"varade/internal/robot"
	"varade/internal/route"
	"varade/internal/serve"
	"varade/internal/stream"
)

func main() {
	devices := flag.Int("devices", 8, "simulated robots to stream concurrently")
	testSeconds := flag.Float64("seconds", 60, "per-device stream duration (simulated)")
	precision := flag.String("precision", "mixed", "per-session serving precision: mixed|float64|float32|int8")
	backends := flag.Int("backends", 1, "fleet servers behind a varade-router (1 = direct, no router)")
	flag.Parse()
	if *backends < 1 {
		*backends = 1
	}
	mixed := *precision == "mixed"
	sessionPrecisions := []string{varade.PrecisionFloat64, varade.PrecisionFloat32, varade.PrecisionInt8}
	precFor := func(id int) string {
		if mixed {
			return sessionPrecisions[id%len(sessionPrecisions)]
		}
		return *precision
	}

	// One shared training run: the detector and the normalisation learned
	// at the line are pushed to every device session.
	cfg := varade.SmallDatasetConfig()
	cfg.TrainSeconds, cfg.TestSeconds, cfg.Collisions = 240, 30, 1 // test split unused; devices stream their own runs
	ds, err := varade.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	idx := varade.InterestingChannels()
	train := varade.SelectChannels(ds.Train, idx)

	model, err := varade.New(varade.EdgeConfig(len(idx)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training VARADE (%d params) on %d samples…\n", model.NumParams(), train.Dim(0))
	if err := model.Fit(train); err != nil {
		log.Fatal(err)
	}
	thr := eval.Quantile(varade.ScoreSeriesBatched(model, train), 0.97)
	// Validate a homogeneous precision up front; the registry entry
	// itself always stays float64 — each session negotiates its own.
	if !mixed && !model.Capabilities().Supports(*precision) {
		log.Fatalf("unknown precision %q (want mixed, float64, float32 or int8)", *precision)
	}

	// Register and serve.
	regDir, err := os.MkdirTemp("", "varade-fleet-registry-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(regDir)
	reg, err := serve.OpenRegistry(regDir)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := reg.Register("varade", model); err != nil {
		log.Fatal(err)
	}
	// The 25ms SLO turns the flusher into a deadline scheduler: flushes
	// fire at min(learned fill target reached, oldest window's deadline).
	srvs := make([]*serve.Server, *backends)
	addrs := make([]string, *backends)
	maddrs := make([]string, *backends)
	for i := range srvs {
		s, err := serve.NewServer(serve.Config{Registry: reg, DefaultModel: "varade", SLOP99: 25 * time.Millisecond})
		if err != nil {
			log.Fatal(err)
		}
		srvs[i] = s
		if addrs[i], err = s.Serve("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		if maddrs[i], err = s.ServeMetrics("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
	}
	srv, addr, maddr := srvs[0], addrs[0], maddrs[0]
	var rt *route.Router
	if *backends > 1 {
		rt = route.NewRouter(route.Config{DefaultModel: "varade", TTL: 5 * time.Second})
		raddr, err := rt.Serve("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		ctl, err := rt.ServeControl("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		for i, s := range srvs {
			if err := s.StartAnnouncer("http://"+ctl, fmt.Sprintf("b%d", i+1),
				addrs[i], maddrs[i], 200*time.Millisecond); err != nil {
				log.Fatal(err)
			}
		}
		for healthy := 0; healthy < *backends; {
			healthy = 0
			for _, b := range rt.Models().Backends {
				if b.Healthy {
					healthy++
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		addr = raddr
		fmt.Printf("varade-router on %s fronting %d backends; aggregated telemetry on http://%s/metrics; launching %d robots…\n\n",
			raddr, *backends, ctl, *devices)
	} else {
		fmt.Printf("fleet server on %s; telemetry on http://%s/metrics; launching %d robots…\n\n",
			addr, maddr, *devices)
	}

	// /sessions only reports live sessions, so the drift panel needs a
	// snapshot taken while the robots still hold their connections: each
	// robot signals `streamed` once its scores are in and then waits at
	// `snapGate` until main has fetched the snapshot, before saying Bye.
	var streamed sync.WaitGroup
	streamed.Add(*devices)
	snapGate := make(chan struct{})

	// Each robot: an independent simulation with its own collisions,
	// normalised by the shared scaler, streamed through one session.
	// Errors are collected, not fatal, so the server still drains and
	// the temp registry is removed even when a device fails.
	start := time.Now()
	var wg sync.WaitGroup
	type deviceStats struct {
		precision, backend         string
		scored, alerts, collisions int
		err                        error
	}
	stats := make([]deviceStats, *devices)
	for id := 0; id < *devices; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var once sync.Once
			barrier := func() { once.Do(streamed.Done) }
			defer barrier() // error paths must not strand the snapshot barrier
			stats[id].err = func() error {
				simCfg := cfg.Sim
				simCfg.NoiseSeed = uint64(5000 + 17*id)
				sim, err := robot.NewSimulator(simCfg)
				if err != nil {
					return err
				}
				raw := sim.RunSeconds(*testSeconds)
				events, _, err := robot.InjectCollisions(raw, simCfg.SampleRate, robot.DefaultCollisionConfig(3))
				if err != nil {
					return err
				}
				series := robot.SelectChannels(ds.Norm.Apply(raw), idx)

				cl, err := serve.DialWith(context.Background(), addr, "", len(idx),
					stream.SessionCaps{Precision: precFor(id)})
				if err != nil {
					return err
				}
				defer cl.Close()
				stats[id].precision = cl.Welcome().Precision
				stats[id].backend = cl.Welcome().Backend
				rows := make([][]float64, series.Dim(0))
				for i := range rows {
					rows[i] = series.Row(i).Data()
				}
				stats[id].collisions = len(events)

				// Send everything, read exactly the expected scores, then
				// hold the session open until the /sessions snapshot lands.
				expect := len(rows) - model.WindowSize() + 1
				if err := cl.Send(rows); err != nil {
					return err
				}
				inEvent := false
				for got := 0; got < expect; {
					scores, err := cl.ReadScores()
					if err != nil {
						return err
					}
					for _, sc := range scores {
						got++
						stats[id].scored++
						anomalous := sc.Value > thr
						if anomalous && !inEvent {
							stats[id].alerts++
						}
						inEvent = anomalous
					}
				}
				barrier()
				<-snapGate
				if err := cl.Bye(); err != nil {
					return err
				}
				for { // drain the server's close
					if _, err := cl.ReadScores(); err != nil {
						return nil
					}
				}
			}()
		}(id)
	}
	// All robots have streamed and still hold their sessions: capture the
	// live per-session sketches, then release the fleet to disconnect.
	streamed.Wait()
	var liveSessions serve.SessionsSnapshot
	for _, ma := range maddrs {
		var snap serve.SessionsSnapshot
		if err := getJSON("http://"+ma+"/sessions", &snap); err != nil {
			fmt.Println("sessions snapshot failed:", err)
			continue
		}
		liveSessions.Count += snap.Count
		liveSessions.Sessions = append(liveSessions.Sessions, snap.Sessions...)
	}
	close(snapGate)
	wg.Wait()
	elapsed := time.Since(start)

	failed := false
	for id, st := range stats {
		if st.err != nil {
			failed = true
			fmt.Printf("robot %2d: FAILED: %v\n", id, st.err)
			continue
		}
		via := ""
		if st.backend != "" {
			via = " via " + st.backend
		}
		fmt.Printf("robot %2d: %-7s %5d samples scored, %2d alert bursts, %d true collisions%s\n",
			id, st.precision, st.scored, st.alerts, st.collisions, via)
	}

	// Headline figures aggregate across every backend; the per-group and
	// scheduler panels below stay per-backend (backend 1 when sharded).
	m := srv.Metrics()
	for _, s := range srvs[1:] {
		bm := s.Metrics()
		m.TotalSessions += bm.TotalSessions
		m.WindowsScored += bm.WindowsScored
		m.Batches += bm.Batches
		m.SamplesDropped += bm.SamplesDropped
		m.ServingGroups += bm.ServingGroups
		m.DerivedGroups += bm.DerivedGroups
		m.Models = append(m.Models, bm.Models...)
		if bm.P50CoalesceMs > m.P50CoalesceMs {
			m.P50CoalesceMs = bm.P50CoalesceMs
		}
		if bm.P99CoalesceMs > m.P99CoalesceMs {
			m.P99CoalesceMs = bm.P99CoalesceMs
		}
	}
	if m.Batches > 0 {
		m.AvgBatchSize = float64(m.WindowsScored) / float64(m.Batches)
	}
	if rt != nil {
		snap := rt.Models()
		fmt.Println("\nring placements (GET /models on the router):")
		for key, id := range snap.Placements {
			fmt.Printf("  %-32s -> %s\n", key, id)
		}
	}
	fmt.Printf("\nfleet drained in %.2fs: %d sessions, %d windows in %d batches (avg %.1f windows/batch)\n",
		elapsed.Seconds(), m.TotalSessions, m.WindowsScored, m.Batches, m.AvgBatchSize)
	fmt.Printf("throughput %.0f windows/s, %d sample drops, coalesce latency p50 %.2fms p99 %.2fms\n",
		float64(m.WindowsScored)/elapsed.Seconds(), m.SamplesDropped, m.P50CoalesceMs, m.P99CoalesceMs)
	fmt.Printf("%d serving groups from one registry entry (%d derived-precision):\n",
		m.ServingGroups, m.DerivedGroups)
	for _, g := range m.Models {
		derived := ""
		if g.Derived {
			derived = " (derived)"
		}
		fmt.Printf("  %-24s %-8s v%d%s\n", g.Key, g.Precision, g.Version, derived)
	}
	fmt.Println()
	telemetryPanel(maddr, liveSessions)

	// Project the measured serving throughput onto the paper's boards,
	// one row per precision: float32 inference moves half the bytes per
	// weight, int8 an eighth, which is the edge deployment's memory win.
	// Only the precision actually served is a measurement; the other rows
	// are extrapolated from the BenchmarkFleetServe64* speedup ratios
	// measured on the 1-core dev container, and labelled as such.
	hostHz := float64(m.WindowsScored) / elapsed.Seconds()
	params := int64(model.NumParams())
	speedup := map[string]float64{"float64": 1, "float32": 1.35, "int8": 1.21}
	// For a mixed fleet the measurement is the blended aggregate across
	// the three groups; treat it as the float64 baseline for projection.
	served := *precision
	if mixed {
		served = "float64"
	}
	var reports []edge.FleetReport
	for _, prec := range []string{"float64", "float32", "int8"} {
		hz := hostHz * speedup[prec] / speedup[served]
		w := edge.Workload{
			Name:       "VARADE",
			Kind:       edge.KindNeural,
			Precision:  prec,
			ModelBytes: edge.ModelBytesFor(params, prec),
		}
		reports = append(reports,
			edge.XavierNX().ProfileFleet(w, hz, *devices, ds.Rate),
			edge.AGXOrin().ProfileFleet(w, hz, *devices, ds.Rate),
		)
	}
	edge.WriteFleetTable(os.Stdout, reports)
	if mixed {
		fmt.Println("(mixed fleet: the measurement blends all three precision groups; the\n" +
			" per-precision rows are projections from the BenchmarkFleetServe64* ratios\n" +
			" on the 1-core dev container — rerun with -precision float32|int8 for a\n" +
			" homogeneous live measurement)")
	} else {
		fmt.Printf("(measured precision: %s; other precision rows are projections from the\n"+
			" BenchmarkFleetServe64* ratios on the 1-core dev container — rerun with\n"+
			" -precision float32|int8 to measure them live)\n", served)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for _, s := range srvs {
		if err := s.Shutdown(ctx); err != nil {
			fmt.Println("drain incomplete:", err)
		}
	}
	if rt != nil {
		if err := rt.Shutdown(ctx); err != nil {
			fmt.Println("router shutdown incomplete:", err)
		}
	}
	if failed {
		os.RemoveAll(regDir) // os.Exit skips the deferred cleanup
		os.Exit(1)
	}
}

// getJSON fetches url and decodes its JSON body into v.
func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// fmtNs renders a nanosecond figure at a human scale.
func fmtNs(ns int64) string {
	switch {
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= int64(time.Microsecond):
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// telemetryPanel renders the drained fleet's observability surface the
// way an operator dashboard would see it — read back through the
// server's own HTTP endpoints, not in-process calls: per-group stage
// latencies, the batch-amortisation table, and the per-session score
// sketches captured while the fleet was live.
func telemetryPanel(maddr string, live serve.SessionsSnapshot) {
	var tm serve.Metrics
	if err := getJSON("http://"+maddr+"/metrics.json", &tm); err != nil {
		fmt.Println("telemetry fetch failed:", err)
		return
	}

	fmt.Println("pipeline stages (GET /metrics.json — admission→enqueue, coalesce fill, batched score, emit):")
	fmt.Printf("  %-26s %-10s %10s %10s %10s\n", "group", "stage", "p50", "p99", "windows")
	for _, g := range tm.Models {
		for _, st := range []string{"admit_wait", "fill_wait", "score", "emit"} {
			s, ok := g.Stages[st]
			if !ok {
				continue
			}
			fmt.Printf("  %-26s %-10s %10s %10s %10d\n", g.Key, st, fmtNs(s.P50Ns), fmtNs(s.P99Ns), s.Windows)
		}
	}

	fmt.Println("\nbatch amortisation (windows per flush vs scoring cost):")
	fmt.Printf("  %-26s %9s %9s %9s %14s\n", "group", "batch ≤", "flushes", "windows", "ns/window")
	for _, g := range tm.Models {
		for _, row := range g.Amortization {
			fmt.Printf("  %-26s %9d %9d %9d %14.0f\n", g.Key, row.BatchLE, row.Flushes, row.Windows, row.NsPerWindow)
		}
		if d := g.ScoreDist; d != nil {
			line := fmt.Sprintf("  %-26s scores: n=%d mean=%.4g std=%.4g", g.Key, d.Count, d.Mean, d.Std)
			if d.MeanPredVariance != nil {
				line += fmt.Sprintf(" (mean predicted variance %.4g)", *d.MeanPredVariance)
			}
			fmt.Println(line)
		}
	}

	fmt.Println("\nclosed-loop scheduler (per-group learned fill targets and flush triggers):")
	fmt.Printf("  %-26s %11s %11s %20s %9s\n", "group", "fill target", "static", "fill/deadline/drain", "slo p99")
	for _, g := range tm.Models {
		s := g.Scheduler
		if s == nil {
			continue
		}
		slo := "-"
		if s.SLOP99Ms > 0 {
			slo = fmt.Sprintf("%.0fms", s.SLOP99Ms)
		}
		fmt.Printf("  %-26s %11d %11d %20s %9s\n", g.Key, s.FillTarget, s.StaticTarget,
			fmt.Sprintf("%d/%d/%d", s.FillFlushes, s.DeadlineFlushes, s.DrainFlushes), slo)
		if s.LastChange != "" {
			fmt.Printf("  %-26s   last decision: %s\n", "", s.LastChange)
		}
	}

	fmt.Printf("\nper-session drift (GET /sessions, last live snapshot: %d sessions):\n", live.Count)
	const maxRows = 12
	for i, s := range live.Sessions {
		if i == maxRows {
			fmt.Printf("  … %d more\n", live.Count-maxRows)
			break
		}
		line := fmt.Sprintf("  session %2d %-26s", s.ID, s.Group)
		if s.Scores != nil {
			line += fmt.Sprintf(" n=%-5d mean=%-10.4g", s.Scores.Count, s.Scores.Mean)
		}
		if s.DriftZ != nil {
			line += fmt.Sprintf(" drift z=%+.2f", *s.DriftZ)
		}
		fmt.Println(line)
	}
	fmt.Println()
}
