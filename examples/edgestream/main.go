// Edgestream: the Figure 2 pipeline end to end — a TCP "sensor gateway"
// streams the robot's samples (the role MQTT-over-Ethernet plays on the
// physical testbed) and an edge-side detector consumes them live, raising
// alerts as collisions arrive.
//
//	go run ./examples/edgestream
package main

import (
	"context"
	"fmt"
	"log"

	"varade"
	"varade/internal/stream"
)

func main() {
	cfg := varade.SmallDatasetConfig()
	cfg.TrainSeconds, cfg.TestSeconds, cfg.Collisions = 300, 120, 10
	ds, err := varade.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	idx := varade.InterestingChannels()
	train := varade.SelectChannels(ds.Train, idx)
	test := varade.SelectChannels(ds.Test, idx)

	model, err := varade.New(varade.EdgeConfig(len(idx)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training detector…")
	if err := model.Fit(train); err != nil {
		log.Fatal(err)
	}
	trainScores := varade.ScoreSeriesBatched(model, train)
	thr := percentile(trainScores, 0.97)

	// Sensor gateway: stream the test run over TCP, one CSV line per
	// sample (Fig. 2's MQTT-over-Ethernet link).
	addr, stop, err := stream.ServeSeries(context.Background(), "127.0.0.1:0", test)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	fmt.Printf("sensor gateway listening on %s; connecting edge detector…\n\n", addr)

	// Edge side: connect, assemble windows, score every arriving sample.
	runner := varade.NewRunner(model, len(idx))
	alerts, inEvent := 0, false
	err = stream.DialAndScore(context.Background(), addr, len(idx), runner, func(s varade.StreamScore) {
		anomalous := s.Value > thr
		if anomalous && !inEvent {
			alerts++
			fmt.Printf("ALERT  t=%6.1fs  score %.4f (threshold %.4f)\n",
				float64(s.Index)/ds.Rate, s.Value, thr)
		}
		inEvent = anomalous
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstream ended: %d samples scored, %d alert bursts, %d true collisions\n",
		runner.Scored(), alerts, len(ds.Events))
}

func percentile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[int(q*float64(len(s)-1))]
}
