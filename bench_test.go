package varade

// Benchmarks regenerating the paper's evaluation artefacts:
//
//	BenchmarkTable1*   — workload generator (the substrate behind Table 1)
//	BenchmarkFigure1*  — VARADE forward pass at the exact Fig. 1 scale
//	BenchmarkTable2*   — per-inference cost of all six detectors (the Hz
//	                     column of Table 2) at edge scale, plus the paper-
//	                     scale VARADE/AE/GBRF costs
//	BenchmarkFigure3*  — full-stream scoring throughput (the Hz axis of
//	                     Fig. 3)
//	BenchmarkAblation* — score definition, window and width sweeps from
//	                     DESIGN.md §4
//
// Run with: go test -bench=. -benchmem
import (
	"fmt"
	"sync"
	"testing"

	"varade/internal/core"
	"varade/internal/edge"
	"varade/internal/robot"
	"varade/internal/tensor"
)

// fixture holds lazily built, fitted detectors shared by benchmarks.
type fixture struct {
	ds   *Dataset // reduced-channel dataset
	dets []NamedDetector
	vm   *core.Model
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(b *testing.B) *fixture {
	b.Helper()
	fixOnce.Do(func() {
		cfg := SmallDatasetConfig()
		cfg.TrainSeconds, cfg.TestSeconds, cfg.Collisions = 300, 150, 12
		ds, err := GenerateDataset(cfg)
		if err != nil {
			fixErr = err
			return
		}
		idx := InterestingChannels()
		sub := &Dataset{
			Train:  SelectChannels(ds.Train, idx),
			Test:   SelectChannels(ds.Test, idx),
			Labels: ds.Labels,
			Events: ds.Events,
			Rate:   ds.Rate,
		}
		dets, err := BuildDetectors(len(idx), ScaleSmall)
		if err != nil {
			fixErr = err
			return
		}
		for _, nd := range dets {
			if err := nd.Detector.Fit(sub.Train); err != nil {
				fixErr = err
				return
			}
		}
		var vm *core.Model
		for _, nd := range dets {
			if m, ok := nd.Detector.(*core.Model); ok {
				vm = m
			}
		}
		fix = &fixture{ds: sub, dets: dets, vm: vm}
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}

// BenchmarkTable1SimulatorStep measures the testbed workload generator:
// one 86-channel sample per iteration.
func BenchmarkTable1SimulatorStep(b *testing.B) {
	sim, err := robot.NewSimulator(robot.DefaultSimConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// BenchmarkFigure1PaperForward measures one forward pass of the exact
// architecture in Fig. 1 (T=512, 86 channels, 128→1024 maps).
func BenchmarkFigure1PaperForward(b *testing.B) {
	m, err := New(PaperConfig(NumChannels))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.RandNormal(tensor.NewRNG(1), 0, 1, 1, NumChannels, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

// benchDetectorInference times one Score call on a real window.
func benchDetectorInference(b *testing.B, name string) {
	f := getFixture(b)
	for _, nd := range f.dets {
		if nd.Detector.Name() != name {
			continue
		}
		w := nd.Detector.WindowSize()
		win := f.ds.Test.SliceRows(100, 100+w)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nd.Detector.Score(win)
		}
		return
	}
	b.Fatalf("no detector named %q", name)
}

func BenchmarkTable2InferenceVARADE(b *testing.B)  { benchDetectorInference(b, "VARADE") }
func BenchmarkTable2InferenceARLSTM(b *testing.B)  { benchDetectorInference(b, "AR-LSTM") }
func BenchmarkTable2InferenceGBRF(b *testing.B)    { benchDetectorInference(b, "GBRF") }
func BenchmarkTable2InferenceAE(b *testing.B)      { benchDetectorInference(b, "AE") }
func BenchmarkTable2InferenceKNN(b *testing.B)     { benchDetectorInference(b, "kNN") }
func BenchmarkTable2InferenceIForest(b *testing.B) { benchDetectorInference(b, "Isolation Forest") }

// BenchmarkTable2PaperVARADE measures the exact paper-scale VARADE
// inference cost (the model behind the 15 Hz / 26 Hz rows of Table 2).
func BenchmarkTable2PaperVARADE(b *testing.B) {
	m, err := New(PaperConfig(NumChannels))
	if err != nil {
		b.Fatal(err)
	}
	win := tensor.RandNormal(tensor.NewRNG(2), 0, 1, 512, NumChannels)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(win)
	}
}

// BenchmarkTable2PaperGBRF measures paper-scale GBRF forecasting cost
// (30 trees per channel, 86 channels).
func BenchmarkTable2PaperGBRF(b *testing.B) {
	cfg := SmallDatasetConfig()
	cfg.TrainSeconds, cfg.TestSeconds, cfg.Collisions = 120, 30, 1
	ds, err := GenerateDataset(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gcfg := GBRFConfig{
		Window: 4, Channels: NumChannels, Trees: 30, LearningRate: 0.3,
		Tree:   gbrfTreeConfig(),
		Stride: 2, Seed: 1,
	}
	gm, err := NewGBRF(gcfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := gm.Fit(ds.Train.SliceRows(0, 600)); err != nil {
		b.Fatal(err)
	}
	win := ds.Test.SliceRows(10, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gm.Score(win)
	}
}

// BenchmarkFigure3ScoreStream measures full-stream scoring throughput —
// the quantity plotted on Fig. 3's x axis — for the trained edge VARADE,
// through the legacy one-window-at-a-time loop.
func BenchmarkFigure3ScoreStream(b *testing.B) {
	f := getFixture(b)
	segment := f.ds.Test.SliceRows(0, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScoreSeries(f.vm, segment)
	}
}

// BenchmarkFigure3ScoreStreamBatched is the same workload through the
// batched parallel engine (ScoreSeriesBatched → Model.ScoreBatch → im2col
// GEMM); the ratio against BenchmarkFigure3ScoreStream is the end-to-end
// speedup of the batched inference path.
func BenchmarkFigure3ScoreStreamBatched(b *testing.B) {
	f := getFixture(b)
	segment := f.ds.Test.SliceRows(0, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScoreSeriesBatched(f.vm, segment)
	}
}

// benchScoreStreamPrecision runs the batched score stream with the fitted
// VARADE model switched to the given inference precision. The ratio of
// the F32 variant against BenchmarkFigure3ScoreStreamBatched is the
// precision axis's end-to-end win on the hot path.
func benchScoreStreamPrecision(b *testing.B, precision string) {
	f := getFixture(b)
	if err := f.vm.SetPrecision(precision); err != nil {
		b.Fatal(err)
	}
	defer f.vm.SetPrecision(PrecisionFloat64)
	segment := f.ds.Test.SliceRows(0, 120)
	ScoreSeriesBatched(f.vm, segment) // compile the inference program outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScoreSeriesBatched(f.vm, segment)
	}
}

// BenchmarkFigure3ScoreStreamF32 is the float32 fast path.
func BenchmarkFigure3ScoreStreamF32(b *testing.B) {
	benchScoreStreamPrecision(b, PrecisionFloat32)
}

// BenchmarkFigure3ScoreStreamInt8 is the quantized path (int8 weights,
// float32 accumulation).
func BenchmarkFigure3ScoreStreamInt8(b *testing.B) {
	benchScoreStreamPrecision(b, PrecisionInt8)
}

// BenchmarkFigure3ScoreStreamBatchedLong scores a full-length test split
// per iteration, the regime where chunked window materialisation and the
// worker pool dominate; allocations per scored window should stay flat as
// the stream grows.
func BenchmarkFigure3ScoreStreamBatchedLong(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScoreSeriesBatched(f.vm, f.ds.Test)
	}
}

// BenchmarkAblationScoreVariance and ...Residual time the two scoring
// rules of the central ablation on the same network.
func BenchmarkAblationScoreVariance(b *testing.B) {
	f := getFixture(b)
	w := f.vm.WindowSize()
	win := f.ds.Test.SliceRows(50, 50+w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.vm.Score(win)
	}
}

func BenchmarkAblationScoreResidual(b *testing.B) {
	f := getFixture(b)
	rs := &ResidualScorer{Model: f.vm}
	w := rs.WindowSize()
	win := f.ds.Test.SliceRows(50, 50+w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Score(win)
	}
}

// BenchmarkAblationWindow sweeps the context length T — the §3.1
// compactness/latency trade-off (inference cost only; accuracy is in
// cmd/varade-bench -exp ablation-window).
func BenchmarkAblationWindow(b *testing.B) {
	for _, w := range []int{8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("T=%d", w), func(b *testing.B) {
			cfg := EdgeConfig(17)
			cfg.Window = w
			m, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			win := tensor.RandNormal(tensor.NewRNG(3), 0, 1, w, 17)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Score(win)
			}
		})
	}
}

// BenchmarkAblationWidth sweeps the feature-map width.
func BenchmarkAblationWidth(b *testing.B) {
	for _, maps := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("maps=%d", maps), func(b *testing.B) {
			cfg := EdgeConfig(17)
			cfg.BaseMaps = maps
			m, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			win := tensor.RandNormal(tensor.NewRNG(4), 0, 1, cfg.Window, 17)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Score(win)
			}
		})
	}
}

// BenchmarkTrainingEpoch measures one ELBO training epoch of the edge
// model on the fixture's training split.
func BenchmarkTrainingEpoch(b *testing.B) {
	f := getFixture(b)
	cfg := EdgeConfig(f.ds.Train.Dim(1))
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tc := DefaultTrainConfig()
	tc.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.FitWindows(f.ds.Train, tc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEdgeProfile measures the board-model mapping itself (it must be
// negligible next to the measured workloads it rescales).
func BenchmarkEdgeProfile(b *testing.B) {
	p := XavierNX()
	w := Workload{Name: "x", Kind: edge.KindNeural, HostSecPerInf: 0.01, ModelBytes: 1e7, WorkingSetBytes: 1e5, AUCROC: 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Profile(w)
	}
}

// gbrfTreeConfig returns the timing-fit tree growth settings (see
// harness.go for why MaxFeatures is capped for cost measurement).
func gbrfTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 3, MinSamplesLeaf: 4, MaxFeatures: 24}
}
