package varade

import (
	"math"
	"testing"

	"varade/internal/core"
	"varade/internal/tensor"
)

// TestScoreSeriesBatchedMatchesSequential is the batched engine's contract:
// for every detector with a batched path, ScoreSeriesBatched must produce
// the same scores as the per-window ScoreSeries loop to within 1e-9.
// Weights are random — score equality does not depend on training, and the
// series is long enough that scoring spans multiple BatchChunk chunks.
func TestScoreSeriesBatchedMatchesSequential(t *testing.T) {
	const channels = 6
	series := tensor.RandNormal(tensor.NewRNG(7), 0, 1, 400, channels)

	vm, err := New(EdgeConfig(channels))
	if err != nil {
		t.Fatal(err)
	}
	am, err := NewAE(AEConfig{Window: 8, Channels: channels, BaseMaps: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lm, err := NewARLSTM(ARLSTMConfig{Window: 8, Channels: channels, Layers: 2, Hidden: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dets := []Detector{vm, am, lm, &core.ResidualScorer{Model: vm}}
	for _, d := range dets {
		if _, ok := d.(Scorer); !ok {
			t.Fatalf("%s does not implement Scorer natively", d.Name())
		}
		if !AsScorer(d).Capabilities().Batched {
			t.Fatalf("%s does not report a batched path", d.Name())
		}
		seq := ScoreSeries(d, series)
		bat := ScoreSeriesBatched(d, series)
		if len(seq) != len(bat) {
			t.Fatalf("%s: %d sequential vs %d batched scores", d.Name(), len(seq), len(bat))
		}
		for i := range seq {
			if math.Abs(seq[i]-bat[i]) > 1e-9 {
				t.Fatalf("%s: score %d diverges: sequential %.12g batched %.12g",
					d.Name(), i, seq[i], bat[i])
			}
		}
	}
}

// TestScoreSeriesBatchedFallback checks that detectors without a batched
// path silently fall back to the sequential loop.
type meanDet struct{ w int }

func (d *meanDet) Name() string                   { return "mean" }
func (d *meanDet) WindowSize() int                { return d.w }
func (d *meanDet) Fit(*tensor.Tensor) error       { return nil }
func (d *meanDet) Score(w *tensor.Tensor) float64 { return w.Mean() }

func TestScoreSeriesBatchedFallback(t *testing.T) {
	series := tensor.RandNormal(tensor.NewRNG(8), 0, 1, 50, 3)
	d := &meanDet{w: 5}
	seq := ScoreSeries(d, series)
	bat := ScoreSeriesBatched(d, series)
	for i := range seq {
		if seq[i] != bat[i] {
			t.Fatalf("fallback diverges at %d: %g vs %g", i, seq[i], bat[i])
		}
	}
}

// TestRunnerPushBatchMatchesPush drives the streaming runner down both the
// scalar and the batched path over the same feed, split across multiple
// PushBatch calls so the ring buffer state carries over between batches.
func TestRunnerPushBatchMatchesPush(t *testing.T) {
	const channels = 4
	vm, err := New(EdgeConfig(channels))
	if err != nil {
		t.Fatal(err)
	}
	feed := tensor.RandNormal(tensor.NewRNG(9), 0, 1, 60, channels)
	var scalar []StreamScore
	r1 := NewRunner(vm, channels)
	for i := 0; i < feed.Dim(0); i++ {
		if s, ok := r1.Push(feed.Row(i).Data()); ok {
			scalar = append(scalar, s)
		}
	}
	var batched []StreamScore
	r2 := NewRunner(vm, channels)
	for lo := 0; lo < feed.Dim(0); lo += 17 {
		hi := lo + 17
		if hi > feed.Dim(0) {
			hi = feed.Dim(0)
		}
		var chunk [][]float64
		for i := lo; i < hi; i++ {
			chunk = append(chunk, feed.Row(i).Data())
		}
		batched = append(batched, r2.PushBatch(chunk)...)
	}
	if len(scalar) != len(batched) {
		t.Fatalf("%d scalar vs %d batched scores", len(scalar), len(batched))
	}
	if r1.Scored() != r2.Scored() {
		t.Fatalf("Scored() %d vs %d", r1.Scored(), r2.Scored())
	}
	for i := range scalar {
		if scalar[i].Index != batched[i].Index {
			t.Fatalf("score %d index %d vs %d", i, scalar[i].Index, batched[i].Index)
		}
		if math.Abs(scalar[i].Value-batched[i].Value) > 1e-9 {
			t.Fatalf("score %d value %.12g vs %.12g", i, scalar[i].Value, batched[i].Value)
		}
	}
}
